//! The partial-replication placement map: warehouse → replica set.
//!
//! Full replication makes every site store and certify everything, so
//! adding sites buys fault tolerance but zero throughput. Genuine partial
//! replication (Sutra & Shapiro) replicates each warehouse on only
//! `replication_factor` of the `sites` replicas; [`PlacementMap`] is the
//! deterministic assignment every component consults — client routing
//! picks a site owning the transaction's home warehouse, each site's
//! [`SpanCertifier`](dbsm_cert::SpanCertifier) indexes only the warehouses
//! it owns, and remote write-sets are applied only where they are stored.
//!
//! The map is validated like a [`FaultPlan`](dbsm_fault::FaultPlan):
//! construct freely, [`PlacementMap::validate`] before running.

use std::fmt;

/// How warehouses are spread over the replica ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Warehouse `w` starts at site `w % sites` and takes the next
    /// `replication_factor` sites on the ring — perfectly balanced for the
    /// uniform TPC-C warehouse population.
    #[default]
    RoundRobin,
    /// Warehouse `w` starts at `mix64(w) % sites` — balanced in
    /// expectation, robust to striding patterns in the warehouse ids.
    Hash,
}

impl PlacementStrategy {
    /// Stable lowercase name (used in reports and bench rows).
    pub fn name(self) -> &'static str {
        match self {
            PlacementStrategy::RoundRobin => "round_robin",
            PlacementStrategy::Hash => "hash",
        }
    }
}

/// Why a [`PlacementMap`] was rejected by [`PlacementMap::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// The map was built for zero sites.
    NoSites,
    /// The replication factor is zero: no site would store anything.
    ZeroReplication,
    /// The map's site count differs from the experiment's.
    MismatchedSites {
        /// Sites the map was built for.
        map: usize,
        /// Sites the experiment runs.
        experiment: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoSites => write!(f, "placement needs at least one site"),
            PlacementError::ZeroReplication => {
                write!(f, "placement needs a replication factor of at least 1")
            }
            PlacementError::MismatchedSites { map, experiment } => {
                write!(f, "placement built for {map} sites but the experiment runs {experiment}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Deterministic warehouse → replica-set assignment: each warehouse
/// (0-based span key, as produced by
/// [`home_warehouse_shard_key`](dbsm_tpcc::schema::home_warehouse_shard_key))
/// lives on `replication_factor` of the `sites` replicas. A map with
/// `replication_factor >= sites` degenerates to full replication
/// ([`PlacementMap::is_full`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementMap {
    /// Number of replicas in the experiment.
    pub sites: usize,
    /// Replicas holding each warehouse (k of N).
    pub replication_factor: usize,
    /// How warehouses are spread over the ring.
    pub strategy: PlacementStrategy,
    /// Opt out of re-placement: validate fault plans under the strict
    /// pre-churn coverage rule (any stranded replica set rejects the run)
    /// instead of the relaxed default, where stranded spans re-home to an
    /// elected survivor. Oracle tests that pin the static-placement
    /// semantics set this via [`PlacementMap::with_strict_coverage`].
    pub strict_coverage: bool,
}

/// SplitMix64 finalizer — the same mixer the bench artifact hashing uses,
/// local so the placement stays dependency-free.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl PlacementMap {
    /// Creates a map placing each warehouse on `replication_factor` of
    /// `sites` replicas under `strategy`.
    pub fn new(sites: usize, replication_factor: usize, strategy: PlacementStrategy) -> Self {
        PlacementMap { sites, replication_factor, strategy, strict_coverage: false }
    }

    /// Round-robin convenience constructor.
    pub fn round_robin(sites: usize, replication_factor: usize) -> Self {
        PlacementMap::new(sites, replication_factor, PlacementStrategy::RoundRobin)
    }

    /// Hash-strategy convenience constructor.
    pub fn hash(sites: usize, replication_factor: usize) -> Self {
        PlacementMap::new(sites, replication_factor, PlacementStrategy::Hash)
    }

    /// Pins the strict pre-churn coverage rule: fault plans that strand
    /// this map's replica sets are rejected at [`validate`] time instead of
    /// triggering re-placement.
    ///
    /// [`validate`]: crate::experiment::ExperimentConfig::validate
    #[must_use]
    pub fn with_strict_coverage(mut self) -> Self {
        self.strict_coverage = true;
        self
    }

    /// True when every site stores every warehouse — the classic
    /// full-replication configuration, which the cluster runs on the
    /// unrestricted certification path.
    pub fn is_full(&self) -> bool {
        self.replication_factor >= self.sites
    }

    /// The effective number of replicas per warehouse.
    pub fn effective_factor(&self) -> usize {
        self.replication_factor.min(self.sites)
    }

    /// The ring position the replica run for `span` starts at.
    fn start(&self, span: u64) -> usize {
        match self.strategy {
            PlacementStrategy::RoundRobin => (span % self.sites as u64) as usize,
            PlacementStrategy::Hash => (mix64(span) % self.sites as u64) as usize,
        }
    }

    /// The sites replicating warehouse `span`, in ring order starting at
    /// its primary.
    pub fn replicas(&self, span: u64) -> Vec<usize> {
        let start = self.start(span);
        (0..self.effective_factor()).map(|j| (start + j) % self.sites).collect()
    }

    /// True when `site` replicates warehouse `span`.
    pub fn owns(&self, site: usize, span: u64) -> bool {
        let start = self.start(span);
        (site + self.sites - start) % self.sites < self.effective_factor()
    }

    /// The warehouses out of `0..spans` that `site` replicates — what its
    /// [`SpanCertifier`](dbsm_cert::SpanCertifier) indexes.
    pub fn spans_of(&self, site: usize, spans: u64) -> Vec<u64> {
        (0..spans).filter(|&s| self.owns(site, s)).collect()
    }

    /// The survivor elected to adopt a stranded `span`: the rendezvous
    /// (highest-random-weight) winner over the `live` sites. Every site
    /// evaluates this over the same installed view and reaches the same
    /// answer with no coordination round — the weight depends only on
    /// `(span, site)`, so a later view change that removes unrelated sites
    /// leaves existing winners in place (minimal reshuffling, the classic
    /// HRW property). Ties are impossible for distinct sites under a
    /// 64-bit mix, but the max scan resolves them toward the lowest site
    /// id deterministically. Returns `None` when nobody is alive.
    pub fn rendezvous_owner(span: u64, live: &[usize]) -> Option<usize> {
        live.iter()
            .copied()
            .map(|site| (mix64(span ^ mix64(site as u64 + 1)), site))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, site)| site)
    }

    /// Checks the map against an experiment with `sites` replicas.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlacementError`] found.
    pub fn validate(&self, sites: usize) -> Result<(), PlacementError> {
        if self.sites == 0 {
            return Err(PlacementError::NoSites);
        }
        if self.replication_factor == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        if self.sites != sites {
            return Err(PlacementError::MismatchedSites { map: self.sites, experiment: sites });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances_and_covers() {
        let p = PlacementMap::round_robin(6, 2);
        let mut per_site = vec![0usize; 6];
        for w in 0..600u64 {
            let reps = p.replicas(w);
            assert_eq!(reps.len(), 2);
            for &s in &reps {
                per_site[s] += 1;
                assert!(p.owns(s, w));
            }
            // Sites off the replica run do not own the warehouse.
            for s in 0..6 {
                assert_eq!(p.owns(s, w), reps.contains(&s), "site {s} warehouse {w}");
            }
        }
        assert!(per_site.iter().all(|&n| n == 200), "round robin balances: {per_site:?}");
    }

    #[test]
    fn hash_strategy_covers_and_roughly_balances() {
        let p = PlacementMap::hash(5, 3);
        let mut per_site = vec![0usize; 5];
        for w in 0..1000u64 {
            for &s in &p.replicas(w) {
                per_site[s] += 1;
            }
        }
        let (min, max) = (per_site.iter().min().unwrap(), per_site.iter().max().unwrap());
        assert!(max - min < 120, "hash spread within ~20%: {per_site:?}");
    }

    #[test]
    fn spans_of_partitions_the_warehouse_space() {
        let p = PlacementMap::round_robin(3, 2);
        let all: Vec<Vec<u64>> = (0..3).map(|s| p.spans_of(s, 12)).collect();
        for w in 0..12u64 {
            let owners = all.iter().filter(|spans| spans.contains(&w)).count();
            assert_eq!(owners, 2, "warehouse {w} lives on exactly k sites");
        }
    }

    #[test]
    fn full_replication_degenerates() {
        assert!(PlacementMap::round_robin(3, 3).is_full());
        assert!(PlacementMap::round_robin(3, 9).is_full());
        assert!(!PlacementMap::round_robin(3, 2).is_full());
        assert_eq!(PlacementMap::round_robin(3, 9).replicas(5).len(), 3);
        assert_eq!(PlacementMap::round_robin(1, 1).replicas(7), vec![0]);
    }

    #[test]
    fn validate_rejects_malformed_maps() {
        assert_eq!(PlacementMap::round_robin(0, 1).validate(0), Err(PlacementError::NoSites));
        assert_eq!(
            PlacementMap::round_robin(3, 0).validate(3),
            Err(PlacementError::ZeroReplication)
        );
        assert_eq!(
            PlacementMap::round_robin(3, 2).validate(6),
            Err(PlacementError::MismatchedSites { map: 3, experiment: 6 })
        );
        assert_eq!(PlacementMap::round_robin(3, 2).validate(3), Ok(()));
        assert!(PlacementError::MismatchedSites { map: 3, experiment: 6 }
            .to_string()
            .contains("3 sites"));
    }

    #[test]
    fn strict_coverage_flag_defaults_off_and_sticks() {
        assert!(!PlacementMap::round_robin(3, 2).strict_coverage);
        assert!(!PlacementMap::hash(3, 2).strict_coverage);
        let strict = PlacementMap::round_robin(3, 2).with_strict_coverage();
        assert!(strict.strict_coverage);
        // Everything else is untouched.
        assert_eq!(strict.sites, 3);
        assert_eq!(strict.replication_factor, 2);
        assert_ne!(strict, PlacementMap::round_robin(3, 2), "flag participates in Eq");
    }

    #[test]
    fn rendezvous_owner_is_deterministic_and_minimally_disruptive() {
        assert_eq!(PlacementMap::rendezvous_owner(7, &[]), None);
        assert_eq!(PlacementMap::rendezvous_owner(7, &[4]), Some(4));
        let live: Vec<usize> = (0..6).collect();
        for span in 0..200u64 {
            let owner = PlacementMap::rendezvous_owner(span, &live).unwrap();
            // Same answer regardless of the order the survivor list is
            // walked in — each site computes it independently.
            let mut rev = live.clone();
            rev.reverse();
            assert_eq!(PlacementMap::rendezvous_owner(span, &rev), Some(owner));
            // Removing a site that did not win leaves the winner in place.
            let without_loser: Vec<usize> =
                live.iter().copied().filter(|&s| s == owner || s != (owner + 1) % 6).collect();
            assert_eq!(PlacementMap::rendezvous_owner(span, &without_loser), Some(owner));
        }
        // The election spreads spans over survivors rather than piling on
        // one site.
        let mut per_site = vec![0usize; 6];
        for span in 0..600u64 {
            per_site[PlacementMap::rendezvous_owner(span, &live).unwrap()] += 1;
        }
        let (min, max) = (per_site.iter().min().unwrap(), per_site.iter().max().unwrap());
        assert!(max - min < 80, "rendezvous spread stays rough-balanced: {per_site:?}");
    }

    #[test]
    fn strategy_names() {
        assert_eq!(PlacementStrategy::RoundRobin.name(), "round_robin");
        assert_eq!(PlacementStrategy::Hash.name(), "hash");
        assert_eq!(PlacementStrategy::default(), PlacementStrategy::RoundRobin);
    }
}

//! Report formatting: renders run metrics as the rows the paper's tables
//! and figure series print.

use crate::metrics::RunMetrics;
use dbsm_tpcc::TxnClass;

/// Formats Table 1/2-style abort-rate rows: one line per class plus "All".
pub fn abort_table(columns: &[(&str, &RunMetrics)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "Transaction"));
    for (name, _) in columns {
        out.push_str(&format!("{name:>16}"));
    }
    out.push('\n');
    for class in TxnClass::ALL {
        out.push_str(&format!("{:<22}", class.name()));
        for (_, m) in columns {
            out.push_str(&format!("{:>16.2}", m.class(class).abort_rate()));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<22}", "All"));
    for (_, m) in columns {
        out.push_str(&format!("{:>16.2}", m.abort_rate()));
    }
    out.push('\n');
    out
}

/// Formats one Fig. 5/6-style series row: clients plus a value per
/// configuration.
pub fn series_row(clients: usize, values: &[f64]) -> String {
    let mut out = format!("{clients:>8}");
    for v in values {
        out.push_str(&format!("{v:>12.1}"));
    }
    out
}

/// Header for a series: clients plus configuration names.
pub fn series_header(configs: &[&str]) -> String {
    let mut out = format!("{:>8}", "clients");
    for c in configs {
        out.push_str(&format!("{c:>12}"));
    }
    out
}

/// Formats an ECDF as `value cumulative` pairs (gnuplot-ready).
pub fn ecdf_lines(points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    for (v, f) in points {
        out.push_str(&format!("{v:>12.3} {f:>8.4}\n"));
    }
    out
}

/// One-line run summary. The `cert=` section reads
/// `comparisons/probes/critical-path probes` (all means per certification)
/// and `sh=` is the mean shard fan-out — 0 for unsharded backends, where
/// the critical path equals the total. The `pipe=` section decomposes the
/// certification latency into queue/service/merge microseconds on the
/// shard servers plus the inline delivery-loop `st`all (all means per
/// certification), and `spec=` tallies confirmations as
/// `hits/revalidated/rollbacks/misses` — all zero for synchronous runs
/// except the stall, which is where the synchronous path pays the full
/// conflict check. The trailing `span=` fraction is how much of the
/// examined read/write-set entries were local to the certifying site's
/// replicated span (1.00 under full replication) and `vote=` counts the
/// partial-replication vote rounds over the cross-span transactions that
/// needed them. The `wire=` section is the decentralized vote traffic
/// ledger: votes `s`ent, `r`eceived, `p`iggybacked on data frames, and
/// retransmitted (`x`), with `wait=` the mean origin-side gap between a
/// transaction's delivery and its quorum decision — all zero under full
/// replication, where no wire votes flow. The `rec=` section is the
/// recovery ledger: completed
/// rejoins over snapshots served, snapshot+delta transfer kilobytes,
/// delta-log entries replayed, and the mean time-to-useful per rejoin —
/// all zero for runs without restarts. The `repl=` section is the
/// re-placement ledger: view changes that stranded spans over spans
/// re-homed, state-transfer kilobytes, vote rounds re-collected against
/// the new owner, mean view-install-to-serving milliseconds per span, and
/// total client parked milliseconds — all zero when churn never leaves a
/// span without a live replica.
pub fn summary_line(label: &str, m: &RunMetrics) -> String {
    format!(
        "{label}: tpm={:.0} latency={:.1}ms aborts={:.2}% cpu={:.0}%/{:.2}% disk={:.0}% net={:.0}KB/s cert={:.1}cmp/{:.1}probe/{:.1}crit sh={:.2} pipe=q{:.1}/s{:.1}/m{:.1}/st{:.1}us spec={}/{}/{}/{} ann={}x{:.1}+{}pb vc={} dup={}/{} span={:.2} vote={}/{} wire=s{}/r{}/p{}/x{} wait={:.1}ms rec={}/{}sn {}+{}KB replay={} ttu={:.0}ms repl={}/{}sp {}KB recast={} serve={:.0}ms park={:.0}ms",
        m.tpm(),
        m.mean_latency_ms(),
        m.abort_rate(),
        m.mean_cpu_usage().0 * 100.0,
        m.mean_cpu_usage().1 * 100.0,
        m.mean_disk_usage() * 100.0,
        m.network_kbps(),
        m.cert_work.mean_comparisons(),
        m.cert_work.mean_probes(),
        m.cert_work.mean_critical_probes(),
        m.cert_work.mean_shards_touched(),
        m.cert_work.mean_queue_us(),
        m.cert_work.mean_service_us(),
        m.cert_work.mean_merge_us(),
        m.cert_work.mean_stall_us(),
        m.cert_work.spec_hits,
        m.cert_work.spec_revalidated,
        m.cert_work.spec_rollbacks,
        m.cert_work.spec_misses,
        m.ann_work.announcements,
        m.ann_work.mean_batch(),
        m.ann_work.piggybacked,
        m.fault_work.view_installs,
        m.fault_work.dup_injected,
        m.fault_work.dup_discarded,
        m.cert_work.span_fraction(),
        m.cert_work.vote_rounds,
        m.cert_work.cross_span_txns,
        m.vote_wire.sent,
        m.vote_wire.received,
        m.vote_wire.piggybacked,
        m.vote_wire.resends,
        m.vote_wire.mean_wait_ms(),
        m.recovery_work.rejoins,
        m.recovery_work.snapshots_served,
        m.recovery_work.snapshot_bytes / 1024,
        m.recovery_work.delta_bytes / 1024,
        m.recovery_work.replayed_entries,
        m.recovery_work.mean_ttu_ms(),
        m.replacement_work.replacements,
        m.replacement_work.rehomed_spans,
        m.replacement_work.transfer_bytes / 1024,
        m.replacement_work.vote_rounds_recollected,
        m.replacement_work.mean_time_to_serving_ms(),
        m.replacement_work.parked_ms(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_table_has_all_classes_and_total() {
        let m = RunMetrics::new(1);
        let t = abort_table(&[("1site", &m)]);
        for class in TxnClass::ALL {
            assert!(t.contains(class.name()), "missing {class}");
        }
        assert!(t.contains("All"));
    }

    #[test]
    fn series_rows_align() {
        let h = series_header(&["1 CPU", "3 CPU"]);
        let r = series_row(500, &[2800.0, 5600.0]);
        assert_eq!(h.len(), r.len());
    }

    #[test]
    fn ecdf_lines_format() {
        let s = ecdf_lines(&[(1.0, 0.5), (2.0, 1.0)]);
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn summary_line_is_single_line() {
        let m = RunMetrics::new(1);
        assert_eq!(summary_line("x", &m).lines().count(), 1);
    }

    #[test]
    fn summary_line_reports_announcement_work() {
        let mut m = RunMetrics::new(1);
        m.ann_work.announcements = 5;
        m.ann_work.assigns_carried = 20;
        m.ann_work.piggybacked = 3;
        assert!(summary_line("x", &m).contains("ann=5x4.0+3pb"));
    }

    #[test]
    fn summary_line_reports_certification_critical_path() {
        let mut m = RunMetrics::new(1);
        m.cert_work.certifications = 10;
        m.cert_work.probes = 120;
        m.cert_work.critical_probes = 40;
        m.cert_work.shard_touches = 25;
        assert!(summary_line("x", &m).contains("cert=0.0cmp/12.0probe/4.0crit sh=2.50"));
    }

    #[test]
    fn summary_line_reports_pipeline_decomposition() {
        let mut m = RunMetrics::new(1);
        m.cert_work.certifications = 10;
        m.cert_work.queue_ns = 40_000;
        m.cert_work.service_ns = 20_000;
        m.cert_work.merge_ns = 5_000;
        m.cert_work.stall_ns = 1_000;
        m.cert_work.spec_hits = 8;
        m.cert_work.spec_revalidated = 1;
        m.cert_work.spec_misses = 1;
        let line = summary_line("x", &m);
        assert!(line.contains("pipe=q4.0/s2.0/m0.5/st0.1us"), "{line}");
        assert!(line.contains("spec=8/1/0/1"), "{line}");
        // Synchronous runs show an all-zero pipeline section.
        let sync = summary_line("y", &RunMetrics::new(1));
        assert!(sync.contains("pipe=q0.0/s0.0/m0.0/st0.0us spec=0/0/0/0"), "{sync}");
    }

    #[test]
    fn summary_line_reports_fault_work() {
        let mut m = RunMetrics::new(1);
        m.fault_work.view_installs = 2;
        m.fault_work.dup_injected = 40;
        m.fault_work.dup_discarded = 38;
        assert!(summary_line("x", &m).contains("vc=2 dup=40/38"));
    }

    #[test]
    fn summary_line_reports_recovery_work() {
        let mut m = RunMetrics::new(1);
        assert!(summary_line("x", &m).contains("rec=0/0sn 0+0KB replay=0 ttu=0ms"));
        m.recovery_work.rejoins = 1;
        m.recovery_work.snapshots_served = 1;
        m.recovery_work.snapshot_bytes = 2 << 20;
        m.recovery_work.delta_bytes = 3072;
        m.recovery_work.replayed_entries = 4;
        m.recovery_work.ttu_ns_total = 1_250_000_000;
        let line = summary_line("x", &m);
        assert!(line.contains("rec=1/1sn 2048+3KB replay=4 ttu=1250ms"), "{line}");
    }

    #[test]
    fn summary_line_reports_replacement_work() {
        let mut m = RunMetrics::new(1);
        assert!(summary_line("x", &m).contains("repl=0/0sp 0KB recast=0 serve=0ms park=0ms"));
        m.replacement_work.replacements = 1;
        m.replacement_work.rehomed_spans = 2;
        m.replacement_work.transfer_bytes = 4 << 20;
        m.replacement_work.vote_rounds_recollected = 3;
        m.replacement_work.time_to_serving_ns_total = 5_000_000_000;
        m.replacement_work.parked_ns = 8_000_000;
        let line = summary_line("x", &m);
        assert!(line.contains("repl=1/2sp 4096KB recast=3 serve=2500ms park=8ms"), "{line}");
    }

    #[test]
    fn summary_line_reports_partial_replication_work() {
        let mut m = RunMetrics::new(1);
        // Full replication (nothing recorded): span shows 1.00, votes zero.
        assert!(summary_line("x", &m).contains("span=1.00 vote=0/0"));
        m.cert_work.record_span(1, 3);
        m.cert_work.record_span(0, 3);
        m.cert_work.vote_rounds = 7;
        m.cert_work.cross_span_txns = 4;
        let line = summary_line("x", &m);
        assert!(line.contains("span=0.17 vote=7/4"), "{line}");
    }

    #[test]
    fn summary_line_reports_wire_vote_traffic() {
        let mut m = RunMetrics::new(1);
        // Full replication: no wire votes flow.
        assert!(summary_line("x", &m).contains("wire=s0/r0/p0/x0 wait=0.0ms"));
        m.vote_wire.sent = 12;
        m.vote_wire.received = 24;
        m.vote_wire.piggybacked = 9;
        m.vote_wire.resends = 2;
        m.vote_wire.decided = 4;
        m.vote_wire.wait_ns = 6_000_000;
        let line = summary_line("x", &m);
        assert!(line.contains("wire=s12/r24/p9/x2 wait=1.5ms"), "{line}");
    }
}

//! Model validation (§4.2): the micro-benchmarks of Fig. 3 (UDP flooding
//! bandwidth and round-trips, real vs. CSRT) and the Fig. 4 Q-Q comparison
//! against a *really concurrent* executor ([`real_rig_run`]).
//!
//! The "real" sides substitute for the paper's physical testbed: flooding
//! and round-trips run the native bridge's transport on the loopback
//! interface, and the Fig. 4 reference is a multi-threaded in-memory engine
//! executing the same TPC-C workload in wall-clock time with real locks —
//! see DESIGN.md for why these substitutions preserve what is being
//! validated.

use crate::cluster::run_experiment;
use crate::experiment::ExperimentConfig;
use bytes::Bytes;
use dbsm_gcs::OverheadModel;
use dbsm_net::{Addr, Dest, NetworkBuilder, Port, SegmentConfig};
use dbsm_sim::stats::Samples;
use dbsm_sim::{CpuBank, ProfilerMode, Sim, SimTime};
use dbsm_tpcc::{TpccConfig, TpccGen};
use std::time::{Duration, Instant};

/// Result of one flooding measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodResult {
    /// Application-level bandwidth written to the socket, Mbit/s (Fig. 3a).
    pub written_mbit: f64,
    /// Bandwidth arriving at the receiver, Mbit/s (Fig. 3b).
    pub received_mbit: f64,
}

/// Simulated flooding benchmark: one sender saturates a UDP socket on a
/// 100 Mbps LAN for `duration` of virtual time, with the CSRT charging the
/// overhead model per message.
pub fn flood_sim(msg_size: usize, duration: Duration, overhead: OverheadModel) -> FloodResult {
    let sim = Sim::new();
    let mut nb = NetworkBuilder::new(&sim);
    let mut lan_cfg = SegmentConfig::fast_ethernet();
    lan_cfg.mtu = 9000; // the benchmark sweeps past 1500B payloads
    let lan = nb.lan(lan_cfg);
    let tx = nb.host(lan);
    let rx = nb.host(lan);
    let net = nb.build();
    let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());

    let recv_bytes = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let rb = recv_bytes.clone();
    net.bind(Addr::new(rx, Port(9)), move |dg| {
        rb.set(rb.get() + dg.payload.len() as u64);
    })
    .expect("bind receiver");

    let sent = std::rc::Rc::new(std::cell::Cell::new(0u64));
    // Self-rescheduling real job: each send costs the CSRT overhead, so the
    // achievable write rate is CPU-bound exactly as in the real system.
    struct Pump {
        cpu: CpuBank,
        net: dbsm_net::Network,
        tx: Addr,
        rx: Addr,
        payload: Bytes,
        sent: std::rc::Rc<std::cell::Cell<u64>>,
        overhead: OverheadModel,
        until: SimTime,
    }
    fn pump_once(p: std::rc::Rc<Pump>) {
        let p2 = p.clone();
        p.cpu.submit_real(Box::new(move |ctx| {
            ctx.charge(p2.overhead.send_cost(p2.payload.len()));
            let net = p2.net.clone();
            let (tx, rx, payload) = (p2.tx, p2.rx, p2.payload.clone());
            ctx.schedule(Duration::ZERO, move || {
                net.send(tx, Dest::Unicast(rx), payload);
            });
            p2.sent.set(p2.sent.get() + 1);
            if ctx.now() < p2.until {
                let p3 = p2.clone();
                ctx.schedule(Duration::ZERO, move || pump_once(p3));
            }
        }));
    }
    let pump = std::rc::Rc::new(Pump {
        cpu: cpu.clone(),
        net: net.clone(),
        tx: Addr::new(tx, Port(1)),
        rx: Addr::new(rx, Port(9)),
        payload: Bytes::from(vec![0u8; msg_size]),
        sent: sent.clone(),
        overhead,
        until: SimTime::ZERO + duration,
    });
    pump_once(pump);
    // Measure reception strictly inside the send window: packets still in
    // flight (or draining from the transmit backlog) when the window closes
    // do not count, matching how the real benchmark samples.
    sim.run_until(SimTime::ZERO + duration);
    let received_in_window = recv_bytes.get();
    let secs = duration.as_secs_f64();
    FloodResult {
        written_mbit: sent.get() as f64 * msg_size as f64 * 8.0 / 1e6 / secs,
        received_mbit: received_in_window as f64 * 8.0 / 1e6 / secs,
    }
}

/// Native flooding benchmark over loopback UDP. `wire_cap_mbit` optionally
/// rate-shapes reception to emulate the paper's 100 Mbps Ethernet (loopback
/// has no such limit).
pub fn flood_native(
    msg_size: usize,
    duration: Duration,
    wire_cap_mbit: Option<f64>,
) -> std::io::Result<FloodResult> {
    use std::net::UdpSocket;
    let rx = UdpSocket::bind("127.0.0.1:0")?;
    rx.set_nonblocking(true)?;
    let rx_addr = rx.local_addr()?;
    let tx = UdpSocket::bind("127.0.0.1:0")?;
    let payload = vec![0u8; msg_size];
    let start = Instant::now();
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut buf = vec![0u8; 65536];
    let cap_bytes_per_sec = wire_cap_mbit.map(|m| m * 1e6 / 8.0);
    while start.elapsed() < duration {
        // UDP on loopback can drop at the socket buffer; that is authentic.
        if tx.send_to(&payload, rx_addr).is_ok() {
            sent += 1;
        }
        // Drain the receiver opportunistically.
        while let Ok((n, _)) = rx.recv_from(&mut buf) {
            // Apply the emulated wire cap by discarding beyond the budget.
            let budget = cap_bytes_per_sec
                .map(|c| (c * start.elapsed().as_secs_f64()) as u64)
                .unwrap_or(u64::MAX);
            if received + n as u64 <= budget {
                received += n as u64;
            }
        }
    }
    let secs = duration.as_secs_f64();
    Ok(FloodResult {
        written_mbit: sent as f64 * msg_size as f64 * 8.0 / 1e6 / secs,
        received_mbit: received as f64 * 8.0 / 1e6 / secs,
    })
}

/// Simulated round-trip time for `n` ping-pongs of `msg_size` bytes
/// (Fig. 3c): two hosts on the LAN, CSRT overheads charged on both ends.
pub fn rtt_sim(msg_size: usize, n: u32, overhead: OverheadModel) -> Duration {
    let sim = Sim::new();
    let mut nb = NetworkBuilder::new(&sim);
    let mut lan_cfg = SegmentConfig::fast_ethernet();
    lan_cfg.mtu = 9000;
    let lan = nb.lan(lan_cfg);
    let a = nb.host(lan);
    let b = nb.host(lan);
    let net = nb.build();
    let cpu_a = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
    let cpu_b = CpuBank::new(&sim, 1, ProfilerMode::synthetic());

    let addr_a = Addr::new(a, Port(1));
    let addr_b = Addr::new(b, Port(2));
    let remaining = std::rc::Rc::new(std::cell::Cell::new(n));
    let done_at = std::rc::Rc::new(std::cell::Cell::new(SimTime::ZERO));

    // Responder: echo back, charging receive+send overhead.
    {
        let net2 = net.clone();
        let cpu_b2 = cpu_b.clone();
        net.bind(addr_b, move |dg| {
            let net3 = net2.clone();
            let payload = dg.payload.clone();
            let from = dg.from;
            cpu_b2.submit_real(Box::new(move |ctx| {
                ctx.charge(overhead.recv_cost(payload.len()));
                ctx.charge(overhead.send_cost(payload.len()));
                let net4 = net3.clone();
                ctx.schedule(Duration::ZERO, move || {
                    net4.send(addr_b, Dest::Unicast(from), payload);
                });
            }));
        })
        .expect("bind responder");
    }
    // Initiator: send, await echo, repeat.
    {
        let net2 = net.clone();
        let cpu_a2 = cpu_a.clone();
        let remaining2 = remaining.clone();
        let done2 = done_at.clone();
        let send_ping = std::rc::Rc::new(move |payload: Bytes| {
            let net3 = net2.clone();
            cpu_a2.submit_real(Box::new(move |ctx| {
                ctx.charge(overhead.send_cost(payload.len()));
                let net4 = net3.clone();
                ctx.schedule(Duration::ZERO, move || {
                    net4.send(addr_a, Dest::Unicast(addr_b), payload);
                });
            }));
        });
        let sp2 = send_ping.clone();
        let cpu_a3 = cpu_a.clone();
        net.bind(addr_a, move |dg| {
            let sp3 = sp2.clone();
            let remaining3 = remaining2.clone();
            let done3 = done2.clone();
            let payload = dg.payload.clone();
            cpu_a3.submit_real(Box::new(move |ctx| {
                ctx.charge(overhead.recv_cost(payload.len()));
                let left = remaining3.get() - 1;
                remaining3.set(left);
                if left == 0 {
                    done3.set(ctx.now());
                } else {
                    let sp4 = sp3.clone();
                    ctx.schedule(Duration::ZERO, move || sp4(payload));
                }
            }));
        })
        .expect("bind initiator");
        send_ping(Bytes::from(vec![0u8; msg_size]));
    }
    sim.run();
    Duration::from_nanos(done_at.get().as_nanos() / u64::from(n))
}

/// Native round-trip over loopback UDP.
pub fn rtt_native(msg_size: usize, n: u32) -> std::io::Result<Duration> {
    use std::net::UdpSocket;
    let a = UdpSocket::bind("127.0.0.1:0")?;
    let b = UdpSocket::bind("127.0.0.1:0")?;
    a.set_read_timeout(Some(Duration::from_secs(2)))?;
    b.set_read_timeout(Some(Duration::from_secs(2)))?;
    let (addr_a, addr_b) = (a.local_addr()?, b.local_addr()?);
    let payload = vec![0u8; msg_size];
    let mut buf = vec![0u8; 65536];
    // Echo thread.
    let echo = std::thread::spawn(move || {
        let mut buf = vec![0u8; 65536];
        for _ in 0..n {
            match b.recv_from(&mut buf) {
                Ok((len, _)) => {
                    let _ = b.send_to(&buf[..len], addr_a);
                }
                Err(_) => break,
            }
        }
    });
    let start = Instant::now();
    let mut completed = 0u32;
    for _ in 0..n {
        if a.send_to(&payload, addr_b).is_err() {
            break;
        }
        match a.recv_from(&mut buf) {
            Ok(_) => completed += 1,
            Err(_) => break,
        }
    }
    let elapsed = start.elapsed();
    let _ = echo.join();
    if completed == 0 {
        return Err(std::io::Error::other("no round trips completed"));
    }
    Ok(elapsed / completed)
}

/// Latency samples split the way Fig. 4 splits them.
#[derive(Debug, Clone, Default)]
pub struct LatencySplit {
    /// Read-only transaction latencies, milliseconds.
    pub read_only_ms: Samples,
    /// Update transaction latencies, milliseconds.
    pub update_ms: Samples,
}

/// Configuration of the Fig. 4 validation comparison.
#[derive(Debug, Clone, Copy)]
pub struct RigConfig {
    /// Concurrent clients (the paper validates with 20).
    pub clients: usize,
    /// Transactions to execute (the paper uses 5000; tests scale down).
    pub txns: u64,
    /// Worker threads standing in for CPUs.
    pub cores: usize,
    /// Scale applied to CPU demands (shrinks wall-clock cost of the rig).
    pub cpu_scale: f64,
    /// Scale applied to think times.
    pub think_scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for RigConfig {
    fn default() -> Self {
        RigConfig {
            clients: 20,
            txns: 1000,
            cores: 2,
            cpu_scale: 0.05,
            think_scale: 0.002,
            seed: 42,
        }
    }
}

/// The "real system" stand-in for Fig. 4: a genuinely concurrent in-memory
/// engine — client threads, a shared lock table behind a mutex (the same
/// `dbsm-db` policy code), semaphore-limited storage with real sleeps, and
/// CPU demands burned as actual busy-work on a bounded worker pool.
pub fn real_rig_run(cfg: RigConfig) -> LatencySplit {
    use dbsm_db::{Acquire, CcPolicy, LockTable, OwnerKind, TxnId};
    use std::sync::{Arc, Condvar, Mutex};

    struct Rig {
        locks: Mutex<LockTable>,
        aborted: Mutex<std::collections::HashSet<TxnId>>,
        lock_cv: Condvar,
        /// Storage channels in use.
        disk: Mutex<usize>,
        disk_cv: Condvar,
        /// Busy worker cores.
        cores: Mutex<usize>,
        cores_cv: Condvar,
        cfg: RigConfig,
        issued: Mutex<u64>,
    }

    impl Rig {
        fn spin(&self, d: Duration) {
            // Acquire a core, burn real cycles, release.
            {
                let mut busy = self.cores.lock().expect("cores lock");
                while *busy >= self.cfg.cores {
                    busy = self.cores_cv.wait(busy).expect("cores wait");
                }
                *busy += 1;
            }
            let t0 = Instant::now();
            while t0.elapsed() < d {
                std::hint::black_box(0u64);
            }
            {
                let mut busy = self.cores.lock().expect("cores lock");
                *busy -= 1;
            }
            self.cores_cv.notify_one();
        }

        /// Sleeps for `d` with sub-OS-tick precision: a coarse sleep for
        /// the bulk and a spin for the tail, so scaled-down disk latencies
        /// are not swamped by timer slack.
        fn precise_sleep(d: Duration) {
            let t0 = Instant::now();
            if d > Duration::from_micros(900) {
                std::thread::sleep(d - Duration::from_micros(600));
            }
            while t0.elapsed() < d {
                std::hint::black_box(0u64);
            }
        }

        /// The storage device: one request at a time (an M/D/1 stand-in for
        /// the 4-channel device), service time `sectors/channels × latency`.
        fn disk_io(&self, sectors: u32, latency: Duration, channels: usize) {
            if sectors == 0 {
                return;
            }
            {
                let mut used = self.disk.lock().expect("disk lock");
                while *used >= 1 {
                    used = self.disk_cv.wait(used).expect("disk wait");
                }
                *used += 1;
            }
            let service = latency.mul_f64(f64::from(sectors) / channels as f64);
            Rig::precise_sleep(service);
            {
                let mut used = self.disk.lock().expect("disk lock");
                *used -= 1;
            }
            self.disk_cv.notify_one();
        }
    }

    let rig = Arc::new(Rig {
        locks: Mutex::new(LockTable::new(CcPolicy::MultiVersion)),
        aborted: Mutex::new(std::collections::HashSet::new()),
        lock_cv: Condvar::new(),
        disk: Mutex::new(0),
        disk_cv: Condvar::new(),
        cores: Mutex::new(0),
        cores_cv: Condvar::new(),
        cfg,
        issued: Mutex::new(0),
    });
    let mut tpcc_cfg = TpccConfig::new(cfg.clients);
    tpcc_cfg.seed = cfg.seed;
    let gen = Arc::new(Mutex::new(TpccGen::new(tpcc_cfg)));
    let results = Arc::new(Mutex::new(LatencySplit::default()));

    // Storage latency scaled consistently with CPU scale.
    let disk_latency = Duration::from_secs_f64(1650e-6 * cfg.cpu_scale.max(0.01));
    let disk_channels = 4;

    let mut handles = Vec::new();
    for client in 0..cfg.clients {
        let rig = rig.clone();
        let gen = gen.clone();
        let results = results.clone();
        handles.push(std::thread::spawn(move || {
            let mut next_txn = (client as u64 + 1) << 32;
            loop {
                // Claim a transaction slot.
                {
                    let mut issued = rig.issued.lock().expect("issued");
                    if *issued >= rig.cfg.txns {
                        return;
                    }
                    *issued += 1;
                }
                let (req, think) = {
                    let mut g = gen.lock().expect("gen");
                    (g.next_request(client), g.think_time())
                };
                std::thread::sleep(Duration::from_secs_f64(
                    think.as_secs_f64() * rig.cfg.think_scale,
                ));
                let spec = req.spec;
                let t0 = Instant::now();
                next_txn += 1;
                let txn = TxnId(next_txn);
                // Atomic lock acquisition with the multiversion policy.
                let mut acquired = spec.read_only;
                let mut aborted = false;
                if !spec.read_only {
                    let mut lt = rig.locks.lock().expect("locks");
                    match lt.acquire(txn, spec.write_set.ids().to_vec(), OwnerKind::LocalAbortable)
                    {
                        Acquire::Granted => acquired = true,
                        Acquire::Queued => {
                            // Wait until granted or aborted by a commit.
                            loop {
                                lt = rig.lock_cv.wait(lt).expect("lock wait");
                                if lt.is_holder(txn) {
                                    acquired = true;
                                    break;
                                }
                                if rig.aborted.lock().expect("aborted").remove(&txn) {
                                    aborted = true;
                                    break;
                                }
                            }
                        }
                        Acquire::Preempt(_) => unreachable!("no remote txns in the rig"),
                    }
                }
                if acquired {
                    rig.spin(Duration::from_secs_f64(spec.cpu.as_secs_f64() * rig.cfg.cpu_scale));
                    if !spec.read_only && !spec.user_abort {
                        rig.disk_io(spec.write_set.len() as u32, disk_latency, disk_channels);
                    }
                    if !spec.read_only {
                        let mut lt = rig.locks.lock().expect("locks");
                        let fx = lt.release(txn, !spec.user_abort);
                        drop(lt);
                        if !fx.aborted.is_empty() {
                            let mut ab = rig.aborted.lock().expect("aborted");
                            ab.extend(fx.aborted.iter().copied());
                        }
                        rig.lock_cv.notify_all();
                    }
                }
                let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
                if !aborted && !spec.user_abort {
                    let mut r = results.lock().expect("results");
                    if spec.read_only {
                        r.read_only_ms.record(latency_ms);
                    } else {
                        r.update_ms.record(latency_ms);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("rig thread");
    }
    Arc::try_unwrap(results).map(|m| m.into_inner().expect("results lock")).unwrap_or_default()
}

/// The simulation side of Fig. 4: the same scaled workload through the
/// centralized model.
pub fn sim_rig_run(cfg: RigConfig) -> LatencySplit {
    let mut xc = ExperimentConfig::centralized(cfg.cores, cfg.clients)
        .with_target(cfg.txns)
        .with_seed(cfg.seed);
    // Scale CPU demands and think times identically to the rig. CPU speed
    // scales simulated processing, so speed = 1/scale shrinks demands.
    xc.think_mean = Duration::from_secs_f64(xc.think_mean.as_secs_f64() * cfg.think_scale);
    xc.storage.latency = Duration::from_secs_f64(1650e-6 * cfg.cpu_scale.max(0.01));
    let mut gcs = dbsm_gcs::GcsConfig::lan(1);
    gcs.n_nodes = 1;
    xc.gcs = Some(gcs);
    // The rig has no certification; switch read validation off for parity.
    xc.certify_read_only = false;
    // Scale per-transaction CPU by running the CPUs faster.
    xc.cpu_speed = 1.0 / cfg.cpu_scale;
    let metrics = run_experiment(xc);
    let mut split = LatencySplit::default();
    for class in dbsm_tpcc::TxnClass::ALL {
        let s = metrics.class(class);
        if class.read_only() {
            split.read_only_ms.merge(&s.latencies_ms);
        } else {
            split.update_ms.merge(&s.latencies_ms);
        }
    }
    split
}

//! The replicated database model (§3, Fig. 2): sites assembled from the
//! simulated database engine, the *real* certification and group
//! communication prototypes, TPC-C clients, and the simulated network —
//! all under the centralized simulation runtime.

use crate::experiment::{CertCostModel, CommitPath, ExperimentConfig};
use crate::metrics::{RejoinRecord, RunMetrics, SiteUsage};
use crate::placement::PlacementMap;
use dbsm_cert::{
    marshal, merge_votes, unmarshal, CertBackend, CertBackendKind, CertRequest, IndexedCertifier,
    Outcome as CertOutcome, RwSet, ShardedCertifier, SiteId, SpanCertifier, SpanPlacement,
};
use dbsm_db::{DbEngine, Outcome, TransactionSpec, TxnId};
use dbsm_fault::FaultSpec;
use dbsm_gcs::{GcsConfig, NodeId, SimBridge, Upcall, View};
use dbsm_net::{
    Addr, BurstyLoss, GroupId, HostId, Network, NetworkBuilder, Port, RandomLoss, SegmentConfig,
    WindowedBurst,
};
use dbsm_sim::{
    derive_seed, derive_seed_indexed, CpuBank, ProfilerMode, RealContext, ServerBank, Sim, SimTime,
};
use dbsm_tpcc::{TpccConfig, TpccGen, TxnClass};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::time::Duration;

struct PendingCert {
    db_txn: TxnId,
    sent_at: SimTime,
}

/// One delivered-but-undecided update transaction in a site's
/// partial-replication FIFO. Deliveries follow the total order, so the
/// One collected wire verdict: `(voter site, conflicting sequence number
/// if that voter's span saw a conflict)`.
type SiteVote = (u16, Option<u64>);

/// FIFO *is* this site's copy of the global sequence: entries are decided
/// and popped strictly in order, each once its wire votes cover every
/// read-set span (or once another site's first decision lands in the
/// shared `decided` map).
struct FifoEntry {
    req: CertRequest,
    delivered_at: SimTime,
    /// Collected `(voter site, conflict)` verdicts, first vote per voter
    /// wins (wire retransmissions re-deliver identical votes).
    votes: Vec<SiteVote>,
    /// Whether this site has already cast (or decided it never will cast)
    /// its own vote for the entry.
    cast: bool,
    /// The entry's write-set restricted to this site's span, precomputed at
    /// delivery: a *later* entry may not vote while an earlier undecided
    /// entry's local writes intersect its read-set — the earlier outcome
    /// could change the probe.
    local_writes: RwSet,
    /// How many times this entry's vote round was re-collected because a
    /// span it touches re-homed mid-round. Capped at [`RECOLLECT_CAP`].
    recollects: u8,
}

/// The per-entry retry cap on vote re-collection: an entry whose round is
/// re-collected more than this many times (one per adoption of a span it
/// touches, while undecided) indicates churn faster than transfers can
/// complete — the run is considered stalled and debug builds assert.
const RECOLLECT_CAP: u8 = 8;

struct SiteState {
    certifier: Box<dyn CertBackend>,
    /// Under partial replication: the span-restricted certifier that does
    /// this site's real conflict-check work — it indexes only the
    /// warehouses the [`PlacementMap`] assigns here. `None` (full
    /// replication) routes everything through `certifier`.
    span: Option<SpanCertifier>,
    /// One FIFO shard server per certifier placement server: speculative
    /// probe work queues here, so same-shard requests serialize and shard
    /// imbalance shows up as queueing latency (pipelined commit path).
    servers: ServerBank,
    /// When each speculation's shard-server fan-out completes, keyed by
    /// `(origin site, txn)` — consulted at total-order confirmation.
    spec_ready: HashMap<(u16, u64), SimTime>,
    /// Partial replication: delivered updates awaiting a decision, in total
    /// order (empty under full replication, where delivery decides).
    fifo: VecDeque<FifoEntry>,
    /// Wire votes that arrived before their transaction's delivery, keyed
    /// by `(origin site, txn)` — votes travel on their own (piggybacked)
    /// channel and may beat the data frame's total-order slot.
    vote_stash: HashMap<(u16, u64), Vec<SiteVote>>,
    /// Rejoin bookkeeping: keys decided *before* this site's adopted
    /// snapshot was cut. Their deliveries are skipped outright — the
    /// snapshot already contains them — while later deliveries run the
    /// normal FIFO. Empty unless the site rejoined.
    skip_keys: HashSet<(u16, u64)>,
    txn_seq: u64,
    pending: HashMap<u64, PendingCert>,
    crashed: bool,
    commits_since_gc: u64,
    /// Reference-chain entries this site's own rejoins skipped over: its
    /// commit log's position on the group's reference chain is
    /// `commit_logs.len() + ref_gap`. Zero until the site rejoins.
    ref_gap: usize,
}

impl SiteState {
    /// Highest committed sequence number of whichever certifier is active.
    fn last_committed(&self) -> u64 {
        match &self.span {
            Some(s) => s.last_committed(),
            None => self.certifier.last_committed(),
        }
    }

    /// Advances the gc cadence after one commit, trimming the active
    /// certifier's history down to `window` entries every 512 commits.
    fn gc_tick(&mut self, window: u64) {
        self.commits_since_gc += 1;
        if self.commits_since_gc < 512 {
            return;
        }
        self.commits_since_gc = 0;
        let stable = self.last_committed().saturating_sub(window);
        match &mut self.span {
            Some(s) => s.gc(stable),
            None => self.certifier.gc(stable),
        }
    }
}

/// A merged certification verdict under partial replication, shared by
/// every site's delivery of the same message.
#[derive(Clone, Copy)]
struct Decision {
    outcome: CertOutcome,
}

/// Cluster-level partial-replication state. Decisions are made by the
/// sites themselves: each covering span owner certifies its slice and
/// multicasts a wire-level vote ([`dbsm_gcs::Gcs::cast_vote`]); whichever
/// site first collects a covering vote set decides by
/// [`dbsm_cert::merge_votes`] and publishes the verdict here. The
/// `oracle` is a full-replication certifier driven once per message at
/// that first decision (first decisions follow the total order, so the
/// oracle certifies in sequence): it cross-checks — `debug_assert` — that
/// the merged wire verdict equals the global one, and provides the full
/// history rejoining sites rebuild their span certifiers from. The
/// `decided` map stands in for the origin's decision dissemination: later
/// sites popping the same entry read the published verdict instead of
/// waiting out a redundant vote collection.
struct PartialState {
    oracle: IndexedCertifier,
    /// Verdicts keyed by `(origin site, txn)` — bounded by the run's
    /// transaction count, never pruned within a run.
    decided: HashMap<(u16, u64), Decision>,
    commits_since_gc: u64,
}

/// A staged rejoin state transfer: the donor's committed state cloned at
/// the grant's order-clean point ([`Upcall::ServeJoin`]), held until the
/// joiner's stack reports [`Upcall::Rejoined`] and adopts it. `cut` is the
/// donor's commit-log length at the clone instant — the reference-log
/// position the snapshot + delta log catches the joiner up to.
struct TransferPacket {
    certifier: Box<dyn CertBackend>,
    /// Under partial placement: the joiner's span certifier, rebuilt from
    /// the oracle's full history restricted to the joiner's spans — the
    /// joiner re-requests only its spans' rows.
    span: Option<SpanCertifier>,
    cut: usize,
    snapshot_bytes: u64,
    /// Partial placement: the donor's delivered-but-undecided FIFO entries,
    /// votes included, so the joiner can pick up the open vote rounds (its
    /// own `cast` flags reset — it votes for itself after the transfer).
    fifo: Vec<FifoEntry>,
    /// Keys decided before the snapshot cut: the joiner skips their
    /// deliveries outright, the snapshot already reflects them.
    decided: HashSet<(u16, u64)>,
}

struct Shared {
    metrics: RunMetrics,
    completed: u64,
    target: u64,
    stopped: bool,
    stop_at: Option<SimTime>,
    sites: Vec<SiteState>,
    partial: Option<PartialState>,
    /// Staged state transfers, keyed by the rejoining site.
    transfers: HashMap<u16, TransferPacket>,
    /// When each restarting site came back up (for time-to-useful).
    restart_at: HashMap<u16, SimTime>,
    /// Clients whose site was down when they tried to fire, with their
    /// parking instant — drained when the site finishes rejoining or when a
    /// re-placement completes (the overlay may now route them elsewhere).
    parked_clients: Vec<Vec<(usize, SimTime)>>,
    /// The dynamic placement overlay: spans re-homed onto an elected
    /// survivor after their whole replica set died. Effective ownership is
    /// the static [`PlacementMap`] *plus* this map; adoption is permanent
    /// for the run (a restarted original replica simply re-adds an owner —
    /// [`merge_votes`] over extra covering votes stays exact).
    rehomed: HashMap<u64, u16>,
    /// Spans mid-transfer: elected at the view change, serving resumes at
    /// [`Cluster::finish_replacement`]. A later view change that kills the
    /// elected adopter re-elects (the entry is overwritten), and the stale
    /// completion skips the span.
    replacing: HashMap<u64, u16>,
    /// The highest view id already swept for stranded spans — the
    /// [`Upcall::ViewChange`] fires once per surviving site, and the first
    /// to handle it performs the (deterministic) election for everyone.
    last_reconfig_view: u64,
    /// Wire votes superseded by a re-collection: votes from `(voter)` for
    /// `(origin, txn)` with a sequence number below the stored threshold
    /// were cast before the voter adopted a span the entry touches, and are
    /// dropped on (late) arrival — the post-adoption re-cast replaces them.
    stale_votes: HashMap<(u16, u16, u64), u64>,
}

struct SiteHandles {
    cpu: CpuBank,
    engine: DbEngine,
    bridge: Option<SimBridge>,
    host: HostId,
}

/// Instantiates the configured certification backend for one site. The
/// sharded backend is keyed by the TPC-C `(table, home warehouse)` pair
/// (rather than the generic row key) so shards align with the workload's
/// locality axis *and* one request's per-table probe runs spread over
/// distinct shards — the intra-request parallelism the critical-path price
/// rewards. Tuples without a home warehouse — the shared item catalogue,
/// the append-only history table — spill.
fn site_backend(kind: CertBackendKind) -> Box<dyn CertBackend> {
    match kind {
        CertBackendKind::Sharded { shards } => Box::new(ShardedCertifier::with_key(
            shards,
            dbsm_tpcc::schema::table_warehouse_shard_key,
        )),
        other => other.new_backend(),
    }
}

/// The assembled system under test: `sites` replicas on a simulated LAN,
/// TPC-C clients attached round-robin, and the experiment's fault plan.
///
/// Construct with [`Cluster::build`], run with [`Cluster::run`].
pub struct Cluster {
    sim: Sim,
    net: Network,
    gen: Rc<RefCell<TpccGen>>,
    sites: Rc<Vec<SiteHandles>>,
    shared: Rc<RefCell<Shared>>,
    cfg: Rc<ExperimentConfig>,
    costs: CertCostModel,
}

impl Clone for Cluster {
    fn clone(&self) -> Self {
        Cluster {
            sim: self.sim.clone(),
            net: self.net.clone(),
            gen: self.gen.clone(),
            sites: self.sites.clone(),
            shared: self.shared.clone(),
            cfg: self.cfg.clone(),
            costs: self.costs,
        }
    }
}

impl Cluster {
    /// Builds the full model for `cfg`: network, sites, protocol stacks and
    /// fault injection hooks. Clients start after [`Cluster::run`].
    pub fn build(cfg: ExperimentConfig) -> Self {
        assert!(cfg.sites >= 1, "at least one site");
        assert!(cfg.clients >= 1, "at least one client");
        if let Err(e) = cfg.validate() {
            panic!("invalid experiment config: {e}");
        }
        // Genuine partial replication is active when a non-degenerate
        // placement map is configured on a multi-site run.
        let partial_map: Option<PlacementMap> =
            cfg.placement.filter(|p| !p.is_full() && cfg.sites > 1);
        let warehouses = dbsm_tpcc::schema::warehouses_for_clients(cfg.clients);
        let sim = Sim::new();
        let mut nb = NetworkBuilder::new(&sim);
        let mut seg = SegmentConfig::fast_ethernet();
        if let Some(lat) = cfg.wan_latency {
            seg.latency = lat;
            seg.tx_buffer = seg.tx_buffer.max(lat * 4);
        }
        let lan = nb.lan(seg);
        let hosts: Vec<HostId> = (0..cfg.sites).map(|_| nb.host(lan)).collect();
        let net = nb.build();

        let gcs_cfg: GcsConfig = cfg.gcs_config();
        let port = Port(7000);
        let group = GroupId(1);
        let peers: Vec<Addr> = hosts.iter().map(|h| Addr::new(*h, port)).collect();

        let mut site_handles = Vec::new();
        let mut site_states = Vec::new();
        for (i, host) in hosts.iter().enumerate() {
            let cpu = CpuBank::new(
                &sim,
                cfg.cpus_per_site,
                ProfilerMode::Synthetic { speed: cfg.cpu_speed },
            );
            let engine = DbEngine::new(
                &sim,
                &cpu,
                cfg.storage,
                cfg.policy,
                derive_seed_indexed(cfg.seed, "storage", i as u64),
            );
            let bridge = if cfg.sites > 1 {
                Some(SimBridge::new(
                    NodeId(i as u16),
                    gcs_cfg.clone(),
                    &net,
                    &cpu,
                    peers[i],
                    peers.clone(),
                    group,
                ))
            } else {
                None
            };
            site_handles.push(SiteHandles { cpu, engine, bridge, host: *host });
            let certifier = site_backend(cfg.cert_backend);
            let servers = ServerBank::new(certifier.servers());
            // Each site's span certifier indexes only the warehouses the
            // placement assigns it — the span key is the TPC-C home
            // warehouse, with warehouse-less tuples (the shared item
            // catalogue, history) global to every site.
            let span = partial_map.map(|p| {
                SpanCertifier::with_span(
                    dbsm_tpcc::schema::home_warehouse_shard_key,
                    p.spans_of(i, warehouses),
                )
            });
            site_states.push(SiteState {
                certifier,
                span,
                servers,
                spec_ready: HashMap::new(),
                fifo: VecDeque::new(),
                vote_stash: HashMap::new(),
                skip_keys: HashSet::new(),
                txn_seq: 0,
                pending: HashMap::new(),
                crashed: false,
                commits_since_gc: 0,
                ref_gap: 0,
            });
        }

        let mut tpcc_cfg = TpccConfig::new(cfg.clients);
        tpcc_cfg.think_mean = cfg.think_mean;
        tpcc_cfg.seed = derive_seed(cfg.seed, "tpcc");
        let gen = Rc::new(RefCell::new(TpccGen::new(tpcc_cfg)));

        let shared = Rc::new(RefCell::new(Shared {
            metrics: RunMetrics::new(cfg.sites),
            completed: 0,
            target: cfg.target_txns,
            stopped: false,
            stop_at: None,
            sites: site_states,
            partial: partial_map.map(|_| PartialState {
                oracle: IndexedCertifier::new(),
                decided: HashMap::new(),
                commits_since_gc: 0,
            }),
            transfers: HashMap::new(),
            restart_at: HashMap::new(),
            parked_clients: vec![Vec::new(); cfg.sites],
            rehomed: HashMap::new(),
            replacing: HashMap::new(),
            last_reconfig_view: 0,
            stale_votes: HashMap::new(),
        }));

        let cluster = Cluster {
            sim,
            net,
            gen,
            sites: Rc::new(site_handles),
            shared,
            cfg: Rc::new(cfg),
            costs: CertCostModel::default(),
        };
        cluster.wire_bridges();
        cluster.apply_faults();
        cluster
    }

    /// The underlying simulation (e.g. for scheduling extra probes).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Protocol metrics of one site's group-communication stack.
    pub fn gcs_metrics(&self, site: usize) -> Option<dbsm_gcs::GcsMetrics> {
        self.sites[site].bridge.as_ref().map(|b| b.metrics())
    }

    fn wire_bridges(&self) {
        for (i, s) in self.sites.iter().enumerate() {
            let Some(bridge) = &s.bridge else { continue };
            let this = self.clone();
            bridge.set_handler(Box::new(move |ctx, upcall| match upcall {
                Upcall::Tentative { payload, .. } => {
                    // Pipelined commit path: certify speculatively the moment
                    // the reliable layer completes the message, queueing the
                    // probe work on the per-site shard servers so it overlaps
                    // the total-order broadcast.
                    if this.cfg.commit_path != CommitPath::Pipelined {
                        return;
                    }
                    let Ok(req) = unmarshal(payload) else { return };
                    if let Some(p) = this.partial_map() {
                        // Partial replication speculates on the span
                        // certifier, and only at sites that will actually
                        // vote — the speculation is the vote's probe,
                        // precomputed so the vote round overlaps the
                        // ordering round.
                        let votes = {
                            let sh = this.shared.borrow();
                            this.casts_vote(p, &sh.rehomed, i, &req)
                        };
                        if !votes {
                            return;
                        }
                    }
                    // Real code: unmarshal + dispatch of the speculative
                    // probe — outside the certifier's serial section, so
                    // cheaper than a synchronous certification entry.
                    ctx.charge(this.costs.speculate_fixed);
                    let now = ctx.now();
                    let mut sh = this.shared.borrow_mut();
                    let sh = &mut *sh;
                    let st = &mut sh.sites[i];
                    let probe = match &mut st.span {
                        Some(span) if this.partial_map().is_some() => span.speculate(&req),
                        _ => st.certifier.speculate(&req),
                    };
                    let fanout = st.servers.submit_fanout(
                        now,
                        probe.loads.iter().map(|&(srv, p)| (srv, this.costs.probe_service(p))),
                    );
                    let merge = this.costs.merge(fanout.servers);
                    sh.metrics.cert_work.record_spec_probe(probe.work);
                    sh.metrics.cert_work.record_queueing(fanout.queued, fanout.service, merge);
                    st.spec_ready.insert((req.site.0, req.txn), fanout.ready_at + merge);
                }
                Upcall::Deliver { payload, .. } => {
                    let Ok(req) = unmarshal(payload) else { return };
                    if this.partial_map().is_some() {
                        // Partial replication (either commit path): enqueue
                        // on the delivery FIFO, then cast/collect wire votes
                        // until the head decides.
                        this.partial_enqueue(i, req, ctx.now());
                        this.advance_partial(i, ctx);
                        return;
                    }
                    match this.cfg.commit_path {
                        CommitPath::Synchronous => {
                            // Real code: unmarshal + certify, charging its CPU
                            // cost — the full conflict check stalls the
                            // delivery loop.
                            let (outcome, work) = {
                                let mut sh = this.shared.borrow_mut();
                                let res = sh.sites[i]
                                    .certifier
                                    .certify(&req)
                                    .expect("history window exceeded");
                                sh.metrics.cert_work.record(res.1);
                                sh.metrics.cert_work.stall_ns +=
                                    this.costs.certify_data(res.1).as_nanos() as u64;
                                res
                            };
                            ctx.charge(this.costs.certify(work));
                            let this2 = this.clone();
                            // Re-enter the simulated domain at start + Δ (Fig. 1b).
                            ctx.schedule(Duration::ZERO, move || {
                                this2.deliver_decision(i, req, outcome);
                            });
                        }
                        CommitPath::Pipelined => {
                            // Confirm against the speculation. The certifier
                            // mutation, commit log and gc cadence must happen
                            // here, in the global sequence — tentative order
                            // differs per site — while the engine-side
                            // decision waits for the shard servers to finish
                            // the speculative probe work.
                            let (outcome, work, pending, ready_at) = {
                                let mut sh = this.shared.borrow_mut();
                                let sh = &mut *sh;
                                let st = &mut sh.sites[i];
                                let (outcome, work, res) =
                                    st.certifier.confirm(&req).expect("history window exceeded");
                                let ready_at = st.spec_ready.remove(&(req.site.0, req.txn));
                                sh.metrics.cert_work.record(work);
                                sh.metrics.cert_work.record_spec(res);
                                sh.metrics.cert_work.stall_ns +=
                                    this.costs.certify_data(work).as_nanos() as u64;
                                let pending = this.decision_bookkeeping(sh, i, &req, outcome);
                                (outcome, work, pending, ready_at)
                            };
                            ctx.charge(this.costs.confirm(work));
                            let delay = ready_at
                                .map_or(Duration::ZERO, |t| t.saturating_duration_since(ctx.now()));
                            let this2 = this.clone();
                            ctx.schedule(delay, move || {
                                this2.apply_decision(i, req, outcome, pending);
                            });
                        }
                    }
                }
                Upcall::Vote { voter, vote } => {
                    // A wire-level certification vote (possibly our own,
                    // looped back). Route it to the delivery FIFO entry it
                    // belongs to, stash it if it beat the delivery, drop it
                    // if the transaction is already decided — then try to
                    // advance the FIFO.
                    if this.partial_map().is_none() {
                        return;
                    }
                    let key = (vote.origin, vote.txn);
                    {
                        let mut sh = this.shared.borrow_mut();
                        let sh = &mut *sh;
                        // A vote cast before its voter adopted a span the
                        // entry touches never probed that span: drop it on
                        // arrival — the post-adoption re-cast (a higher
                        // sequence number on the voter's stream) replaces it.
                        if sh
                            .stale_votes
                            .get(&(voter.0, vote.origin, vote.txn))
                            .is_some_and(|&min| vote.seq < min)
                        {
                            return;
                        }
                        let st = &mut sh.sites[i];
                        if let Some(entry) =
                            st.fifo.iter_mut().find(|e| (e.req.site.0, e.req.txn) == key)
                        {
                            if !entry.votes.iter().any(|&(v, _)| v == voter.0) {
                                entry.votes.push((voter.0, vote.conflict));
                            }
                        } else if !st.skip_keys.contains(&key)
                            && !sh
                                .partial
                                .as_ref()
                                .expect("partial state")
                                .decided
                                .contains_key(&key)
                        {
                            let votes = st.vote_stash.entry(key).or_default();
                            if !votes.iter().any(|&(v, _)| v == voter.0) {
                                votes.push((voter.0, vote.conflict));
                            }
                        }
                    }
                    this.advance_partial(i, ctx);
                }
                Upcall::ViewChange(view) => {
                    // Re-placement trigger: if the installed view removed a
                    // span's last live owner, elect a survivor to adopt it.
                    // Every surviving site receives the same view and would
                    // compute the same election; the first handler performs
                    // it for everyone (deduped by view id).
                    if this.partial_map().is_some() {
                        let this2 = this.clone();
                        ctx.schedule(Duration::ZERO, move || this2.rehome_stranded(view));
                    }
                }
                Upcall::Excluded => {
                    let this2 = this.clone();
                    ctx.schedule(Duration::ZERO, move || this2.crash_site(i));
                }
                Upcall::ServeJoin { joiner } => {
                    // Donor half of the rejoin: clone the committed state at
                    // this order-clean instant — the exact point the granted
                    // order base names — and charge the marshalling of the
                    // snapshot onto this site's CPU.
                    let bytes = this.stage_transfer(i, joiner.0);
                    ctx.charge(this.costs.marshal(bytes as usize));
                }
                Upcall::Rejoined => {
                    // Receiving half: the stack is live in the new view;
                    // install the staged state before acting on deliveries.
                    let this2 = this.clone();
                    ctx.schedule(Duration::ZERO, move || this2.adopt_transfer(i));
                }
            }));
            bridge.start();
        }
    }

    fn apply_faults(&self) {
        // Loss-family specs *stack* (Network::add_loss): a plan combining
        // e.g. a correlated burst with background random loss injects both,
        // each advancing its own schedule on every arrival.
        for (spec_idx, spec) in self.cfg.faults.specs.iter().enumerate() {
            match spec {
                FaultSpec::RandomLoss { target, p } => {
                    for (i, s) in self.sites.iter().enumerate() {
                        if target.includes(i as u16) {
                            let seed = derive_seed_indexed(
                                self.cfg.seed,
                                "loss",
                                i as u64 + 17 * spec_idx as u64,
                            );
                            self.net.add_loss(s.host, Box::new(RandomLoss::new(*p, seed)));
                        }
                    }
                }
                FaultSpec::BurstyLoss { target, fraction, mean_burst } => {
                    for (i, s) in self.sites.iter().enumerate() {
                        if target.includes(i as u16) {
                            let seed = derive_seed_indexed(
                                self.cfg.seed,
                                "burst",
                                i as u64 + 17 * spec_idx as u64,
                            );
                            self.net.add_loss(
                                s.host,
                                Box::new(BurstyLoss::new(*fraction, *mean_burst, seed)),
                            );
                        }
                    }
                }
                FaultSpec::ClockDrift { target, rate } => {
                    for (i, s) in self.sites.iter().enumerate() {
                        if target.includes(i as u16) {
                            if let Some(b) = &s.bridge {
                                b.set_clock_drift(*rate);
                            }
                        }
                    }
                }
                FaultSpec::SchedLatency { target, max } => {
                    for (i, s) in self.sites.iter().enumerate() {
                        if target.includes(i as u16) {
                            if let Some(b) = &s.bridge {
                                b.set_sched_latency(
                                    *max,
                                    derive_seed_indexed(self.cfg.seed, "sched", i as u64),
                                );
                            }
                        }
                    }
                }
                FaultSpec::Crash { site, at } => {
                    let this = self.clone();
                    let site = *site as usize;
                    self.sim.schedule_at(*at, move || this.crash_site(site));
                }
                FaultSpec::Restart { site, at } => {
                    let this = self.clone();
                    let site = *site as usize;
                    self.sim.schedule_at(*at, move || this.restart_site(site));
                }
                FaultSpec::Partition { groups, at, heal_at } => {
                    // Split and heal ride the simulation scheduler so the
                    // membership machinery sees a real network event, not a
                    // configuration change.
                    let host_groups: Vec<Vec<HostId>> = groups
                        .iter()
                        .map(|g| g.iter().map(|s| self.sites[*s as usize].host).collect())
                        .collect();
                    let net = self.net.clone();
                    self.sim.schedule_at(*at, move || net.set_partition(&host_groups));
                    let net = self.net.clone();
                    self.sim.schedule_at(*heal_at, move || net.clear_partition());
                }
                FaultSpec::DuplicateDelivery { p, max_copies } => {
                    for (i, s) in self.sites.iter().enumerate() {
                        let seed = derive_seed_indexed(
                            self.cfg.seed,
                            "dup",
                            i as u64 + 17 * spec_idx as u64,
                        );
                        self.net.set_duplication(s.host, *p, *max_copies, seed);
                    }
                }
                FaultSpec::CorrelatedBurst { sites, window, p } => {
                    // One seed for the whole spec: every listed site gets the
                    // identical blackout schedule — that is the correlation.
                    let seed = derive_seed_indexed(self.cfg.seed, "cburst", spec_idx as u64);
                    for site in sites {
                        let host = self.sites[*site as usize].host;
                        self.net.add_loss(host, Box::new(WindowedBurst::new(*window, *p, seed)));
                    }
                }
            }
        }
    }

    fn crash_site(&self, site: usize) {
        {
            let mut sh = self.shared.borrow_mut();
            if sh.sites[site].crashed {
                return;
            }
            sh.sites[site].crashed = true;
            if !sh.metrics.crashed_sites.contains(&(site as u16)) {
                sh.metrics.crashed_sites.push(site as u16);
            }
        }
        if let Some(b) = &self.sites[site].bridge {
            b.kill();
        } else {
            self.net.set_host_down(self.sites[site].host, true);
        }
    }

    // ----- site recovery (snapshot + delta-log rejoin) -------------------

    /// Brings a crashed/halted site back up: the fresh protocol incarnation
    /// announces itself to the live primary component and the join protocol
    /// takes it from there — grant, state transfer, view install. A no-op
    /// if the site is not down.
    fn restart_site(&self, site: usize) {
        {
            let mut sh = self.shared.borrow_mut();
            if !sh.sites[site].crashed {
                return;
            }
            sh.restart_at.insert(site as u16, self.sim.now());
        }
        if let Some(b) = &self.sites[site].bridge {
            b.revive();
        } else {
            // A single-site run has no group to rejoin: its committed state
            // survived locally, so coming back up is immediate.
            self.net.set_host_down(self.sites[site].host, false);
            let kept = self.shared.borrow().metrics.commit_logs[site].len();
            self.finish_rejoin(site, kept, kept);
        }
    }

    /// Donor half of the rejoin ([`Upcall::ServeJoin`]): clones this site's
    /// committed certification state at the grant's order-clean point and
    /// stages it for the joiner, pricing the snapshot in bytes. Under
    /// partial placement the packet instead carries the joiner's span
    /// certifier rebuilt from the oracle history — only its spans' rows.
    /// Returns the bytes staged (for the donor's marshalling charge).
    fn stage_transfer(&self, donor: usize, joiner: u16) -> u64 {
        let warehouses = dbsm_tpcc::schema::warehouses_for_clients(self.cfg.clients);
        let mut sh = self.shared.borrow_mut();
        let sh = &mut *sh;
        let certifier = sh.sites[donor].certifier.clone_box();
        let (span, owned, cut, fifo, decided) = match self.partial_map() {
            Some(p) => {
                let spans = p.spans_of(joiner as usize, warehouses);
                let owned = spans.len() as u64;
                let place = SpanPlacement::new(dbsm_tpcc::schema::home_warehouse_shard_key, spans);
                let partial = sh.partial.as_ref().expect("partial state");
                let span = partial.oracle.reproject(place);
                // Decisions decouple from deliveries here: the snapshot is
                // the oracle's state, so the cut is the oracle's commit
                // count — the decided prefix of the total order, which may
                // run ahead of the donor's own popped prefix.
                let cut = partial.oracle.last_committed() as usize;
                // Open vote rounds ride along: the donor's
                // delivered-but-undecided entries with the votes collected
                // so far. The joiner re-votes for itself (`cast` reset) and
                // indexes them by *its* span.
                let fifo: Vec<FifoEntry> = sh.sites[donor]
                    .fifo
                    .iter()
                    .filter(|e| !partial.decided.contains_key(&(e.req.site.0, e.req.txn)))
                    .map(|e| FifoEntry {
                        req: e.req.clone(),
                        delivered_at: e.delivered_at,
                        votes: e.votes.clone(),
                        cast: false,
                        local_writes: span.local_subset(&e.req.write_set),
                        recollects: e.recollects,
                    })
                    .collect();
                let decided: HashSet<(u16, u64)> = partial.decided.keys().copied().collect();
                (Some(span), owned, cut, fifo, decided)
            }
            None => {
                // The cut is a *reference-chain* position: a donor that
                // itself rejoined earlier has a transfer gap in its local
                // log, so its length alone would understate where the
                // chain stands.
                let cut = sh.metrics.commit_logs[donor].len() + sh.sites[donor].ref_gap;
                (None, warehouses as u64, cut, Vec::new(), HashSet::new())
            }
        };
        let snapshot_bytes = owned * self.costs.snapshot_bytes_per_warehouse;
        sh.metrics.recovery_work.snapshots_served += 1;
        sh.metrics.recovery_work.snapshot_bytes += snapshot_bytes;
        sh.transfers
            .insert(joiner, TransferPacket { certifier, span, cut, snapshot_bytes, fifo, decided });
        snapshot_bytes
    }

    /// Receiving half of the rejoin ([`Upcall::Rejoined`]): installs the
    /// staged snapshot, aborts the first incarnation's in-flight
    /// transactions, prices the delta log from the site's pre-crash commit
    /// point to the transfer cut, and schedules [`Cluster::finish_rejoin`]
    /// after the transfer's streaming delay. Deliveries arriving meanwhile
    /// certify against the adopted state — the delta log plays in real
    /// time; only client service waits for the transfer to finish.
    fn adopt_transfer(&self, site: usize) {
        let (kept, cut, total_bytes, orphans) = {
            let mut sh = self.shared.borrow_mut();
            let sh = &mut *sh;
            let Some(packet) = sh.transfers.remove(&(site as u16)) else { return };
            let kept = sh.metrics.commit_logs[site].len();
            let st = &mut sh.sites[site];
            // The delta log spans from this site's pre-crash reference
            // position (local length plus any earlier transfer gap) to the
            // cut; the new gap replaces the old one, since the cut already
            // accounts for everything skipped so far.
            let replayed = packet.cut.saturating_sub(kept + st.ref_gap) as u64;
            let delta_bytes = replayed * self.costs.delta_bytes_per_entry;
            st.ref_gap = packet.cut.saturating_sub(kept);
            st.certifier = packet.certifier;
            st.servers = ServerBank::new(st.certifier.servers());
            if packet.span.is_some() {
                st.span = packet.span;
                // The seeded FIFO replaces the first incarnation's: the
                // donor's open vote rounds continue from the snapshot.
                // Wire votes that raced ahead of the adoption survive in
                // the stash — merge them into the seeded entries (first
                // vote per voter wins), drop the ones the snapshot already
                // decided, keep the rest for future deliveries.
                st.fifo = packet.fifo.into();
                st.skip_keys = packet.decided;
                let stash = std::mem::take(&mut st.vote_stash);
                for (key, votes) in stash {
                    if st.skip_keys.contains(&key) {
                        continue;
                    }
                    match st.fifo.iter_mut().find(|e| (e.req.site.0, e.req.txn) == key) {
                        Some(entry) => {
                            for (v, c) in votes {
                                if !entry.votes.iter().any(|&(w, _)| w == v) {
                                    entry.votes.push((v, c));
                                }
                            }
                        }
                        None => {
                            st.vote_stash.insert(key, votes);
                        }
                    }
                }
            }
            st.spec_ready.clear();
            st.commits_since_gc = 0;
            let orphans: Vec<TxnId> = st.pending.drain().map(|(_, p)| p.db_txn).collect();
            sh.metrics.recovery_work.delta_bytes += delta_bytes;
            sh.metrics.recovery_work.replayed_entries += replayed;
            // The chain record goes in *now*: from this instant the site's
            // log continues the reference from `cut`, even if the run stops
            // before the streaming transfer finishes (`ttu` stays zero
            // until [`Cluster::finish_rejoin`] fills it in).
            sh.metrics.rejoins.push(RejoinRecord {
                site: site as u16,
                kept,
                cut: packet.cut,
                ttu: SimTime::ZERO,
            });
            (kept, packet.cut, packet.snapshot_bytes + delta_bytes, orphans)
        };
        // Requests multicast by the first incarnation whose decision never
        // came back: abort them so their clients resume.
        for db_txn in orphans {
            self.sites[site].engine.resolve(db_txn, false);
        }
        let this = self.clone();
        self.sim.schedule_in(self.costs.transfer_delay(total_bytes), move || {
            this.finish_rejoin(site, kept, cut);
        });
    }

    /// The rejoined site becomes useful: cleared from the crashed set,
    /// time-to-useful recorded, parked clients released.
    fn finish_rejoin(&self, site: usize, kept: usize, cut: usize) {
        let parked = {
            let mut sh = self.shared.borrow_mut();
            let sh = &mut *sh;
            sh.sites[site].crashed = false;
            sh.metrics.crashed_sites.retain(|&s| s != site as u16);
            let ttu = sh
                .restart_at
                .remove(&(site as u16))
                .map_or(Duration::ZERO, |t| self.sim.now().saturating_duration_since(t));
            sh.metrics.recovery_work.rejoins += 1;
            sh.metrics.recovery_work.ttu_ns_total += ttu.as_nanos() as u64;
            let ttu = SimTime::from_nanos(ttu.as_nanos() as u64);
            // Fill in the record pushed at adoption; the bridge-less
            // single-site path skips adoption and records here.
            match sh.metrics.rejoins.iter_mut().rev().find(|r| r.site == site as u16) {
                Some(r) => r.ttu = ttu,
                None => sh.metrics.rejoins.push(RejoinRecord { site: site as u16, kept, cut, ttu }),
            }
            let parked = std::mem::take(&mut sh.parked_clients[site]);
            let now = self.sim.now();
            for &(_, at) in &parked {
                sh.metrics.replacement_work.parked_ns +=
                    now.saturating_duration_since(at).as_nanos() as u64;
            }
            parked
        };
        for (client, _) in parked {
            self.schedule_client(client);
        }
        // A rejoined voter resumes voting *now*, not at the next delivery:
        // the seeded FIFO may already hold entries waiting on its vote.
        if self.partial_map().is_some() {
            let this = self.clone();
            self.sites[site].cpu.submit_real(Box::new(move |ctx| this.advance_partial(site, ctx)));
        }
    }

    // ----- replica re-placement under churn -------------------------------

    /// Sweeps the installed `view` for stranded spans — warehouses whose
    /// every effective owner (static replicas plus any current or
    /// in-flight adopter) fell out of the view — and elects a surviving
    /// adopter per span by rendezvous hash
    /// ([`PlacementMap::rendezvous_owner`]). The election is a pure
    /// function of `(span, view)`, so every survivor computes the same
    /// assignment with no coordination round; the first site to handle the
    /// view change performs it for all (deduped by view id). Each adopter's
    /// transfer is priced like a rejoin snapshot of the adopted warehouses
    /// and completes at [`Cluster::finish_replacement`]; until then the
    /// span is unservable and its clients park.
    fn rehome_stranded(&self, view: View) {
        let Some(p) = self.partial_map() else { return };
        let warehouses = dbsm_tpcc::schema::warehouses_for_clients(self.cfg.clients) as u64;
        let groups: Vec<(usize, Vec<u64>)> = {
            let mut sh = self.shared.borrow_mut();
            if sh.last_reconfig_view >= view.id {
                return;
            }
            sh.last_reconfig_view = view.id;
            let live: Vec<usize> = view.members.iter().map(|n| n.0 as usize).collect();
            if live.is_empty() {
                return;
            }
            let is_live = |s: u16| view.members.contains(NodeId(s));
            let mut by_adopter: HashMap<usize, Vec<u64>> = HashMap::new();
            for span in 0..warehouses {
                if p.replicas(span).iter().any(|&r| is_live(r as u16))
                    || sh.rehomed.get(&span).copied().is_some_and(is_live)
                    || sh.replacing.get(&span).copied().is_some_and(is_live)
                {
                    continue;
                }
                let Some(owner) = PlacementMap::rendezvous_owner(span, &live) else { continue };
                sh.replacing.insert(span, owner as u16);
                by_adopter.entry(owner).or_default().push(span);
            }
            let mut groups: Vec<(usize, Vec<u64>)> = by_adopter.into_iter().collect();
            groups.sort_unstable_by_key(|&(a, _)| a);
            groups
        };
        for (adopter, spans) in groups {
            let bytes = spans.len() as u64 * self.costs.snapshot_bytes_per_warehouse;
            let delay = self.costs.marshal(bytes as usize) + self.costs.transfer_delay(bytes);
            let started = self.sim.now();
            let this = self.clone();
            self.sim.schedule_in(delay, move || this.finish_replacement(adopter, spans, started));
        }
    }

    /// Completes a re-placement: the adopter's span certifier is rebuilt
    /// over its old spans plus the adopted ones from the oracle's full
    /// history (the PR 8 reproject machinery, donor-less — the shared
    /// oracle stands in for decision dissemination), open vote rounds
    /// touching the adopted spans are re-collected against the new owner,
    /// and every client parked at a dead site is released to re-route
    /// through the overlay. Runs as real work on the adopter's CPU.
    fn finish_replacement(&self, adopter: usize, spans: Vec<u64>, started: SimTime) {
        let this = self.clone();
        self.sites[adopter].cpu.submit_real(Box::new(move |ctx| {
            {
                let sh = this.shared.borrow();
                // The adopter died mid-transfer (its exclusion re-elected),
                // or a later view change moved every span elsewhere.
                if sh.sites[adopter].crashed
                    || !spans.iter().any(|s| sh.replacing.get(s) == Some(&(adopter as u16)))
                {
                    return;
                }
            }
            // Quiesce first: pop every globally decided entry off the
            // adopter's FIFO, so the reprojected certifier (which reflects
            // the oracle's decided frontier) lands exactly at the adopter's
            // position — re-applying a decided entry would corrupt it.
            this.advance_partial(adopter, ctx);
            let now = ctx.now();
            let parked = {
                let mut sh = this.shared.borrow_mut();
                let sh = &mut *sh;
                let spans: Vec<u64> = spans
                    .iter()
                    .copied()
                    .filter(|s| sh.replacing.get(s) == Some(&(adopter as u16)))
                    .collect();
                for &s in &spans {
                    sh.replacing.remove(&s);
                    sh.rehomed.insert(s, adopter as u16);
                }
                let key_of = dbsm_tpcc::schema::home_warehouse_shard_key;
                let mut owned: Vec<u64> = sh.sites[adopter]
                    .span
                    .as_ref()
                    .expect("partial site has a span certifier")
                    .owned_spans()
                    .to_vec();
                owned.extend(spans.iter().copied());
                let place = SpanPlacement::new(key_of, owned);
                let new_span = sh.partial.as_ref().expect("partial state").oracle.reproject(place);
                let adopted: HashSet<u64> = spans.iter().copied().collect();
                // Vote re-collection: the adopter's pre-adoption votes never
                // probed the adopted spans, so for every undecided entry
                // touching one, strip them (here and, below, everywhere
                // else) and reset the cast flag — the next advance re-votes
                // with the reprojected certifier, and the new wire vote is
                // accepted because the old one is gone. The quiesce left
                // only undecided entries, so local_writes can be recomputed
                // wholesale under the new span.
                let mut rekey: Vec<(u16, u64)> = Vec::new();
                {
                    let st = &mut sh.sites[adopter];
                    st.span = Some(new_span);
                    let SiteState { span, fifo, .. } = st;
                    let span = span.as_ref().expect("just installed");
                    let touches = |req: &CertRequest| {
                        let hit = |id| key_of(id).is_some_and(|s: u64| adopted.contains(&s));
                        req.read_set.ids().iter().any(|&id| id.is_table_level() || hit(id))
                            || req.write_set.ids().iter().any(|&id| hit(id))
                    };
                    for e in fifo.iter_mut() {
                        e.local_writes = span.local_subset(&e.req.write_set);
                        if touches(&e.req) {
                            e.cast = false;
                            e.votes.retain(|&(v, _)| v != adopter as u16);
                            e.recollects += 1;
                            debug_assert!(
                                e.recollects <= RECOLLECT_CAP,
                                "vote round re-collected past its retry cap"
                            );
                            rekey.push((e.req.site.0, e.req.txn));
                        }
                    }
                }
                // Late-arriving pre-adoption votes must not refill the slot:
                // anything below the adopter's next stream sequence is stale
                // for the re-collected keys.
                let threshold =
                    this.sites[adopter].bridge.as_ref().expect("replicated site").vote_seq();
                for &(origin, txn) in &rekey {
                    sh.stale_votes.insert((adopter as u16, origin, txn), threshold);
                }
                for (j, st) in sh.sites.iter_mut().enumerate() {
                    if j == adopter {
                        continue;
                    }
                    for e in st.fifo.iter_mut() {
                        if rekey.contains(&(e.req.site.0, e.req.txn)) {
                            e.votes.retain(|&(v, _)| v != adopter as u16);
                        }
                    }
                    for (k, votes) in st.vote_stash.iter_mut() {
                        if rekey.contains(k) {
                            votes.retain(|&(v, _)| v != adopter as u16);
                        }
                    }
                }
                let repl = &mut sh.metrics.replacement_work;
                repl.replacements += 1;
                repl.rehomed_spans += spans.len() as u64;
                repl.transfer_bytes += spans.len() as u64 * this.costs.snapshot_bytes_per_warehouse;
                repl.time_to_serving_ns_total +=
                    now.saturating_duration_since(started).as_nanos() as u64 * spans.len() as u64;
                repl.vote_rounds_recollected += rekey.len() as u64;
                // Release everyone parked at a dead site: the overlay now
                // serves the adopted spans, so their clients re-route here
                // (others re-park, their wait still on the ledger).
                let mut parked: Vec<(usize, SimTime)> = Vec::new();
                for j in 0..sh.parked_clients.len() {
                    if sh.sites[j].crashed {
                        parked.append(&mut sh.parked_clients[j]);
                    }
                }
                for &(_, at) in &parked {
                    sh.metrics.replacement_work.parked_ns +=
                        now.saturating_duration_since(at).as_nanos() as u64;
                }
                parked
            };
            for (client, _) in parked {
                this.schedule_client(client);
            }
            // Re-cast the re-collected votes (and any deferred ones the new
            // coverage unblocks) right away.
            this.advance_partial(adopter, ctx);
        }));
    }

    /// Runs the experiment: starts the clients, advances the simulation
    /// until the transaction target or the time cap is reached, and collects
    /// the metrics.
    pub fn run(self) -> RunMetrics {
        let n_clients = self.cfg.clients;
        for client in 0..n_clients {
            self.schedule_client(client);
        }
        self.sim.run_until(SimTime::ZERO + self.cfg.max_sim);
        self.collect()
    }

    fn collect(self) -> RunMetrics {
        let elapsed = {
            let sh = self.shared.borrow();
            sh.stop_at.unwrap_or_else(|| self.sim.now())
        };
        let mut metrics = {
            let mut sh = self.shared.borrow_mut();
            std::mem::replace(&mut sh.metrics, RunMetrics::new(0))
        };
        metrics.elapsed = elapsed;
        let el = elapsed.as_secs_f64();
        for (i, s) in self.sites.iter().enumerate() {
            let usage = s.cpu.usage();
            let denom = el * self.cfg.cpus_per_site as f64;
            metrics.site_usage[i] = SiteUsage {
                cpu_total: if denom > 0.0 { usage.busy_total().as_secs_f64() / denom } else { 0.0 },
                cpu_real: if denom > 0.0 { usage.busy_real.as_secs_f64() / denom } else { 0.0 },
                disk: s.engine.storage().utilization(elapsed),
            };
        }
        for s in self.sites.iter() {
            if let Some(b) = &s.bridge {
                let m = b.metrics();
                metrics.ann_work.record_site(&m);
                metrics.fault_work.record_site(&m);
                metrics.vote_wire.record_site(&m);
            }
        }
        let net_stats = self.net.stats();
        metrics.fault_work.dup_injected = net_stats.duplicates_injected();
        metrics.fault_work.partition_drops = net_stats.drops(dbsm_net::DropCause::Partition);
        metrics.network_tx_bytes = net_stats.total_tx_bytes();
        metrics
    }

    // ----- client loop ---------------------------------------------------

    /// The active partial-replication placement, if any: a configured,
    /// non-degenerate map on a multi-site run.
    fn partial_map(&self) -> Option<&PlacementMap> {
        self.cfg.placement.as_ref().filter(|p| !p.is_full() && self.cfg.sites > 1)
    }

    /// Warehouse-aware routing: under partial replication a client attaches
    /// to a site that replicates its home warehouse (spread over that
    /// warehouse's replica set plus its adopter, if the span re-homed),
    /// preferring live owners — a crashed replica's clients spread over the
    /// survivors instead of parking. Only when *every* owner is down (span
    /// stranded, transfer in flight) does the client park at a dead owner,
    /// to be released when the re-placement completes. Full replication
    /// keeps the classic round-robin. Recomputed at every fire, so the
    /// overlay re-routes parked clients automatically.
    fn site_of(&self, client: usize) -> usize {
        if let Some(p) = self.partial_map() {
            // TPC-C home warehouses are 1-based; placement spans 0-based.
            let span = self.gen.borrow().home_warehouse(client) - 1;
            let mut owners = p.replicas(span);
            let sh = self.shared.borrow();
            if let Some(&adopter) = sh.rehomed.get(&span) {
                if !owners.contains(&(adopter as usize)) {
                    owners.push(adopter as usize);
                }
            }
            let live: Vec<usize> =
                owners.iter().copied().filter(|&s| !sh.sites[s].crashed).collect();
            let pool = if live.is_empty() { &owners } else { &live };
            return pool[client % pool.len()];
        }
        client % self.cfg.sites
    }

    fn schedule_client(&self, client: usize) {
        let think = self.gen.borrow_mut().think_time();
        let this = self.clone();
        self.sim.schedule_in(think, move || this.client_fire(client));
    }

    fn client_fire(&self, client: usize) {
        let site = self.site_of(client);
        {
            let mut sh = self.shared.borrow_mut();
            if sh.stopped {
                return;
            }
            if sh.sites[site].crashed {
                // Park until the site rejoins or a re-placement re-routes
                // the span; a permanently crashed site with no adopter
                // keeps its clients parked for the rest of the run.
                sh.parked_clients[site].push((client, self.sim.now()));
                return;
            }
        }
        let req = self.gen.borrow_mut().next_request(client);
        let class = req.class;
        self.shared.borrow_mut().metrics.class_mut(class).submitted += 1;
        let start_seq = self.shared.borrow().sites[site].last_committed();
        let submit_at = self.sim.now();
        let this_cr = self.clone();
        let this_done = self.clone();
        self.sites[site].engine.begin_local(
            req.spec,
            move |db_txn, spec| {
                this_cr.commit_request(site, db_txn, spec.clone(), start_seq);
            },
            move |_db_txn, outcome| {
                this_done.client_done(client, class, submit_at, outcome);
            },
        );
    }

    fn client_done(&self, client: usize, class: TxnClass, submit_at: SimTime, outcome: Outcome) {
        let now = self.sim.now();
        {
            let mut sh = self.shared.borrow_mut();
            let stats = sh.metrics.class_mut(class);
            match outcome {
                Outcome::Committed => {
                    stats.committed += 1;
                    stats
                        .latencies_ms
                        .record(now.saturating_duration_since(submit_at).as_secs_f64() * 1e3);
                }
                Outcome::Aborted(reason) => stats.record_abort(reason),
            }
            sh.completed += 1;
            if sh.completed >= sh.target && !sh.stopped {
                sh.stopped = true;
                sh.stop_at = Some(now);
            }
            if sh.stopped {
                return;
            }
        }
        self.schedule_client(client);
    }

    // ----- the distributed termination protocol (§3.3) -------------------

    fn commit_request(&self, site: usize, db_txn: TxnId, spec: TransactionSpec, start_seq: u64) {
        let engine = self.sites[site].engine.clone();
        if spec.relaxed || (spec.read_only && !self.cfg.certify_read_only) {
            engine.resolve(db_txn, true);
            return;
        }
        if spec.read_only {
            // Local validation of the read-set against concurrent commits,
            // as real code on the site's CPU. Under partial replication a
            // fully span-local read-set resolves from the site's own span
            // certifier; a cross-span read additionally merges the remote
            // owners' verdicts and pays the vote round trip.
            let this = self.clone();
            self.sites[site].cpu.submit_real(Box::new(move |ctx| {
                let (ok, work, vote_delay) = {
                    let mut sh = this.shared.borrow_mut();
                    let sh = &mut *sh;
                    let st = &mut sh.sites[site];
                    if let Some(span) = &st.span {
                        let (local_ok, work) = span.certify_read_only(&spec.read_set, start_seq);
                        let (covered, total) = span.coverage(&spec.read_set);
                        sh.metrics.cert_work.record(work);
                        sh.metrics.cert_work.record_span(covered as u64, total as u64);
                        if covered == total {
                            (local_ok, work, Duration::ZERO)
                        } else {
                            let partial = sh.partial.as_ref().expect("partial state");
                            let (remote_ok, _) =
                                partial.oracle.certify_read_only(&spec.read_set, start_seq);
                            sh.metrics.cert_work.vote_rounds += 1;
                            sh.metrics.cert_work.cross_span_txns += 1;
                            (local_ok && remote_ok, work, this.costs.vote_rtt)
                        }
                    } else {
                        let (ok, work) = st.certifier.certify_read_only(&spec.read_set, start_seq);
                        sh.metrics.cert_work.record(work);
                        (ok, work, Duration::ZERO)
                    }
                };
                ctx.charge(this.costs.certify(work));
                let engine = engine.clone();
                ctx.schedule(vote_delay, move || engine.resolve(db_txn, ok));
            }));
            return;
        }
        // Update transaction: gather, marshal and atomically multicast.
        let (seq, mut read_set) = {
            let mut sh = self.shared.borrow_mut();
            let st = &mut sh.sites[site];
            st.txn_seq += 1;
            st.pending.insert(st.txn_seq, PendingCert { db_txn, sent_at: self.sim.now() });
            (st.txn_seq, spec.read_set.clone())
        };
        read_set.upgrade_large_tables(self.cfg.table_lock_threshold);
        let req = CertRequest {
            site: SiteId(site as u16),
            txn: seq,
            start_seq,
            read_set,
            write_set: spec.write_set.clone(),
            write_bytes: spec.write_bytes,
        };
        let this = self.clone();
        self.sites[site].cpu.submit_real(Box::new(move |ctx| {
            let wire = marshal(&req);
            ctx.charge(this.costs.marshal(wire.len()));
            if this.cfg.sites == 1 {
                // Centralized termination: the same real code path, with
                // trivially local total order.
                let req = unmarshal(wire).expect("own marshalling is sound");
                let (outcome, work) = {
                    let mut sh = this.shared.borrow_mut();
                    let res =
                        sh.sites[site].certifier.certify(&req).expect("history window exceeded");
                    sh.metrics.cert_work.record(res.1);
                    sh.metrics.cert_work.stall_ns +=
                        this.costs.certify_data(res.1).as_nanos() as u64;
                    res
                };
                ctx.charge(this.costs.certify(work));
                let this2 = this.clone();
                ctx.schedule(Duration::ZERO, move || this2.deliver_decision(site, req, outcome));
            } else {
                let bridge = this.sites[site].bridge.as_ref().expect("replicated site");
                bridge.broadcast_in(ctx, wire);
            }
        }));
    }

    /// True when `site` casts a wire vote on `req`: it owns at least one
    /// read- or write-set span — statically, or as the current adopter of a
    /// re-homed span (`rehomed` overlay). Table-level (wildcard) reads
    /// probe every span, so every site's slice of the table contributes to
    /// the verdict and everyone votes; a transaction touching no span at
    /// all (global tuples only) is also voted by everyone — any single vote
    /// covers it, and the origin may be down.
    fn casts_vote(
        &self,
        p: &PlacementMap,
        rehomed: &HashMap<u64, u16>,
        site: usize,
        req: &CertRequest,
    ) -> bool {
        if req.read_set.ids().iter().any(|id| id.is_table_level()) {
            return true;
        }
        let mut any_span = false;
        for &id in req.read_set.ids().iter().chain(req.write_set.ids()) {
            if let Some(span) = dbsm_tpcc::schema::home_warehouse_shard_key(id) {
                any_span = true;
                if p.owns(site, span) || rehomed.get(&span) == Some(&(site as u16)) {
                    return true;
                }
            }
        }
        !any_span
    }

    /// True when `entry`'s collected votes decide it: every read-set tuple
    /// is covered by a voter that indexes it. A row with a home warehouse
    /// needs a vote from one of that span's owners; a span-less row is
    /// indexed by every replica, so any vote covers it; a table-level
    /// (wildcard) read probes every span and needs the voters to jointly
    /// own all of them. Write-set tuples need no witness — conflicts are
    /// detected by the *reading* side against committed writes.
    ///
    /// A re-homed span is covered by its *static* owners' votes (cast
    /// before they died, with state valid at cast time) or its current
    /// adopter's — a superseded adopter's votes stop counting the moment a
    /// successor takes over, and the successor's re-cast covers instead.
    fn votes_cover(
        &self,
        p: &PlacementMap,
        rehomed: &HashMap<u64, u16>,
        warehouses: u64,
        entry: &FifoEntry,
    ) -> bool {
        let reads = entry.req.read_set.ids();
        if reads.is_empty() {
            return true;
        }
        if entry.votes.is_empty() {
            return false;
        }
        let owned = |span: u64| {
            entry
                .votes
                .iter()
                .any(|&(v, _)| p.owns(v as usize, span) || rehomed.get(&span) == Some(&v))
        };
        reads.iter().all(|&id| {
            if id.is_table_level() {
                (0..warehouses).all(owned)
            } else {
                match dbsm_tpcc::schema::home_warehouse_shard_key(id) {
                    Some(span) => owned(span),
                    None => true,
                }
            }
        })
    }

    /// Enqueues a delivered update transaction on `site`'s
    /// partial-replication FIFO (both commit paths), folding in any wire
    /// votes that arrived ahead of the delivery. Skips transactions the
    /// site's adopted rejoin snapshot already covers.
    fn partial_enqueue(&self, site: usize, req: CertRequest, now: SimTime) {
        let mut sh = self.shared.borrow_mut();
        let sh = &mut *sh;
        let st = &mut sh.sites[site];
        let key = (req.site.0, req.txn);
        if st.skip_keys.contains(&key) {
            return;
        }
        let span = st.span.as_ref().expect("partial site has a span certifier");
        let (covered, total) = {
            let (rc, rt) = span.coverage(&req.read_set);
            let (wc, wt) = span.coverage(&req.write_set);
            (rc + wc, rt + wt)
        };
        sh.metrics.cert_work.record_span(covered as u64, total as u64);
        let local_writes = span.local_subset(&req.write_set);
        let votes = st.vote_stash.remove(&key).unwrap_or_default();
        st.fifo.push_back(FifoEntry {
            req,
            delivered_at: now,
            votes,
            cast: false,
            local_writes,
            recollects: 0,
        });
    }

    /// Advances `site`'s partial-replication FIFO as far as it will go:
    /// first decides and pops entries off the head (a head decides when its
    /// votes cover the read-set, or when another site's published verdict
    /// is available), then casts this site's wire votes for entries whose
    /// turn has come — popping may unblock deferred votes, and freshly
    /// cast votes return as loopback [`Upcall::Vote`]s which re-enter here.
    fn advance_partial(&self, site: usize, ctx: &mut RealContext<'_>) {
        let Some(p) = self.partial_map() else { return };
        let warehouses = dbsm_tpcc::schema::warehouses_for_clients(self.cfg.clients) as u64;
        let now = ctx.now();

        // Phase 1: decide + pop. Collected under one borrow, applied after.
        let mut popped: Vec<(CertRequest, CertOutcome, Option<PendingCert>, Option<SimTime>)> =
            Vec::new();
        {
            let mut sh = self.shared.borrow_mut();
            let sh = &mut *sh;
            while let Some(head) = sh.sites[site].fifo.front() {
                let key = (head.req.site.0, head.req.txn);
                let published =
                    sh.partial.as_ref().expect("partial state").decided.get(&key).copied();
                let outcome = match published {
                    Some(d) => d.outcome,
                    None if self.votes_cover(p, &sh.rehomed, warehouses, head) => {
                        match merge_votes(head.votes.iter().map(|&(_, c)| c)) {
                            Some(conflict_seq) => CertOutcome::Abort { conflict_seq },
                            None => CertOutcome::Commit(sh.sites[site].last_committed() + 1),
                        }
                    }
                    None => break,
                };
                let entry = sh.sites[site].fifo.pop_front().expect("head just inspected");
                if published.is_none() {
                    // First decision cluster-wide: cross-check the merged
                    // wire verdict against the full-replication oracle and
                    // publish it for the other sites' pops.
                    let partial = sh.partial.as_mut().expect("partial state");
                    let (oracle_outcome, _) =
                        partial.oracle.certify(&entry.req).expect("history window exceeded");
                    debug_assert_eq!(
                        oracle_outcome, outcome,
                        "merged wire votes diverged from the certification oracle"
                    );
                    let _ = oracle_outcome;
                    if outcome.is_commit() {
                        partial.commits_since_gc += 1;
                        if partial.commits_since_gc >= 512 {
                            partial.commits_since_gc = 0;
                            let last = partial.oracle.last_committed();
                            partial.oracle.gc(last.saturating_sub(self.cfg.history_window));
                        }
                    }
                    let voters = self.voters_for(&sh.rehomed, &entry.req);
                    sh.metrics.cert_work.vote_rounds += voters;
                    sh.metrics.cert_work.cross_span_txns += u64::from(voters > 0);
                    partial.decided.insert(key, Decision { outcome });
                }
                let pending = self.decision_bookkeeping(sh, site, &entry.req, outcome);
                sh.sites[site]
                    .span
                    .as_mut()
                    .expect("partial site has a span certifier")
                    .apply(&entry.req, outcome);
                if entry.req.site.0 as usize == site {
                    sh.metrics.vote_wire.decided += 1;
                    sh.metrics.vote_wire.wait_ns +=
                        now.saturating_duration_since(entry.delivered_at).as_nanos() as u64;
                }
                let ready_at = sh.sites[site].spec_ready.remove(&key);
                popped.push((entry.req, outcome, pending, ready_at));
            }
        }
        for (req, outcome, pending, ready_at) in popped {
            // Pipelined deliveries wait out the speculative probe's shard
            // servers; synchronous ones have no speculation and apply now.
            let delay = ready_at.map_or(Duration::ZERO, |t| t.saturating_duration_since(now));
            let this = self.clone();
            ctx.schedule(delay, move || this.apply_decision(site, req, outcome, pending));
        }

        // Phase 2: cast votes whose turn has come. An entry votes once no
        // earlier undecided entry's local writes can still change its
        // probe; a blocked entry does not block later ones.
        let mut casts: Vec<(u16, u64, Option<u64>)> = Vec::new();
        {
            let mut sh = self.shared.borrow_mut();
            let sh = &mut *sh;
            let rehomed = &sh.rehomed;
            let SiteState { span, fifo, crashed, .. } = &mut sh.sites[site];
            if *crashed {
                return;
            }
            let span = span.as_mut().expect("partial site has a span certifier");
            let mut charge = Duration::ZERO;
            for k in 0..fifo.len() {
                if fifo[k].cast {
                    continue;
                }
                if !self.casts_vote(p, rehomed, site, &fifo[k].req) {
                    fifo[k].cast = true;
                    continue;
                }
                if (0..k).any(|j| fifo[j].local_writes.intersects(&fifo[k].req.read_set)) {
                    continue;
                }
                // Real code: the span-restricted conflict probe over only
                // the locally indexed warehouses — this is where partial
                // replication shrinks per-site certification work to ~k/N.
                let req = fifo[k].req.clone();
                let (conflict, work) = match self.cfg.commit_path {
                    CommitPath::Pipelined => {
                        let (conflict, work, res) =
                            span.confirm_vote(&req).expect("history window exceeded");
                        sh.metrics.cert_work.record_spec(res);
                        charge += self.costs.confirm(work);
                        (conflict, work)
                    }
                    CommitPath::Synchronous => {
                        let (conflict, work) = span.vote(&req).expect("history window exceeded");
                        charge += self.costs.certify(work);
                        (conflict, work)
                    }
                };
                sh.metrics.cert_work.record(work);
                sh.metrics.cert_work.stall_ns += self.costs.certify_data(work).as_nanos() as u64;
                fifo[k].cast = true;
                casts.push((req.site.0, req.txn, conflict));
            }
            if charge > Duration::ZERO {
                ctx.charge(charge);
            }
        }
        if !casts.is_empty() {
            let bridge = self.sites[site].bridge.as_ref().expect("replicated site");
            for (origin, txn, conflict) in casts {
                bridge.cast_vote(origin, txn, conflict);
            }
        }
    }

    /// How many remote span owners must vote on `req`: the distinct primary
    /// replicas of read/write-set warehouses the origin site does not own
    /// (the adopter stands in as primary for a re-homed span). Zero means
    /// the transaction is local to the origin's span and commits without a
    /// vote round.
    fn voters_for(&self, rehomed: &HashMap<u64, u16>, req: &CertRequest) -> u64 {
        let Some(p) = self.partial_map() else { return 0 };
        let origin = req.site.0 as usize;
        let mut voters: Vec<usize> = Vec::new();
        for &id in req.read_set.ids().iter().chain(req.write_set.ids()) {
            let Some(span) = dbsm_tpcc::schema::home_warehouse_shard_key(id) else {
                continue;
            };
            if p.owns(origin, span) || rehomed.get(&span) == Some(&(origin as u16)) {
                continue;
            }
            let primary = match rehomed.get(&span) {
                Some(&a) => a as usize,
                None => p.replicas(span)[0],
            };
            if !voters.contains(&primary) {
                voters.push(primary);
            }
        }
        voters.len() as u64
    }

    /// Applies a certification decision at `site` (already totally ordered).
    fn deliver_decision(&self, site: usize, req: CertRequest, outcome: CertOutcome) {
        let pending = {
            let mut sh = self.shared.borrow_mut();
            self.decision_bookkeeping(&mut sh, site, &req, outcome)
        };
        self.apply_decision(site, req, outcome, pending);
    }

    /// The order-sensitive half of a delivery: gc cadence, pending lookup
    /// and the per-site commit log. Must run in the global sequence — the
    /// pipelined path calls it at total-order confirmation even though the
    /// engine-side decision may still be waiting on the shard servers.
    fn decision_bookkeeping(
        &self,
        sh: &mut Shared,
        site: usize,
        req: &CertRequest,
        outcome: CertOutcome,
    ) -> Option<PendingCert> {
        let origin = req.site.0 as usize == site;
        let st = &mut sh.sites[site];
        if outcome.is_commit() {
            st.gc_tick(self.cfg.history_window);
        }
        let pending = if origin { st.pending.remove(&req.txn) } else { None };
        if outcome.is_commit() {
            sh.metrics.commit_logs[site].push((req.site.0, req.txn));
        }
        pending
    }

    /// The engine-side half of a delivery: resolve the origin's transaction
    /// or apply the remote write-set. Order-insensitive — the certifier and
    /// commit log already recorded the decision.
    fn apply_decision(
        &self,
        site: usize,
        req: CertRequest,
        outcome: CertOutcome,
        pending: Option<PendingCert>,
    ) {
        let origin = req.site.0 as usize == site;
        let engine = &self.sites[site].engine;
        match (origin, outcome.is_commit()) {
            (true, commit) => {
                if let Some(p) = pending {
                    let lat = self.sim.now().saturating_duration_since(p.sent_at);
                    self.shared
                        .borrow_mut()
                        .metrics
                        .cert_latencies_ms
                        .record(lat.as_secs_f64() * 1e3);
                    engine.resolve(p.db_txn, commit);
                }
            }
            (false, true) => {
                // Under partial replication a site stores (and pays for)
                // only the write-set rows in its own span; a remote commit
                // touching none of them costs nothing here.
                let local = {
                    let sh = self.shared.borrow();
                    sh.sites[site].span.as_ref().map(|span| span.local_subset(&req.write_set))
                };
                match local {
                    Some(ws) => {
                        if !ws.is_empty() {
                            let bytes = (u64::from(req.write_bytes) * ws.len() as u64
                                / req.write_set.len().max(1) as u64)
                                as u32;
                            engine.apply_remote(ws, bytes.max(1), || {});
                        }
                    }
                    None => {
                        engine.apply_remote(req.write_set.clone(), req.write_bytes, || {});
                    }
                }
            }
            (false, false) => {}
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("sites", &self.sites.len())
            .field("clients", &self.cfg.clients)
            .finish()
    }
}

/// Builds and runs one experiment, returning its metrics.
pub fn run_experiment(cfg: ExperimentConfig) -> RunMetrics {
    Cluster::build(cfg).run()
}

//! # dbsm-core — the replicated database testbed (the paper's contribution)
//!
//! Assembles everything: the discrete-event kernel and CSRT (`dbsm-sim`),
//! the simulated network (`dbsm-net`), the *real* certification and group
//! communication prototypes (`dbsm-cert`, `dbsm-gcs`), the database server
//! model (`dbsm-db`), and the TPC-C traffic generator (`dbsm-tpcc`) — into
//! the replicated database model of the paper's Fig. 2, with fault
//! injection (`dbsm-fault`), global observation, and an experiment runner
//! that reproduces every table and figure of §4–§5.
//!
//! # Examples
//!
//! A small 3-site replicated run:
//!
//! ```
//! use dbsm_core::{run_experiment, ExperimentConfig};
//!
//! let cfg = ExperimentConfig::replicated(3, 30).with_target(50);
//! let metrics = run_experiment(cfg);
//! assert!(metrics.committed() > 0);
//! // DBSM safety: all sites committed the same sequence.
//! dbsm_fault::check_logs(&metrics.commit_logs, &[false, false, false]).unwrap();
//! ```

#![warn(missing_docs)]

mod cluster;
mod experiment;
mod metrics;
mod placement;
pub mod report;
pub mod validate;

pub use cluster::{run_experiment, Cluster};
pub use dbsm_cert::CertBackendKind;
pub use dbsm_fault::{FaultPlan, FaultSpec, PlanError};
pub use dbsm_gcs::AnnBatchPolicy;
pub use experiment::{CertCostModel, CommitPath, ConfigError, ExperimentConfig};
pub use metrics::{
    AnnWorkTotals, CertWorkTotals, ClassStats, FaultWorkTotals, ReplacementWorkTotals, RunMetrics,
    SiteUsage, VoteWireTotals,
};
pub use placement::{PlacementError, PlacementMap, PlacementStrategy};

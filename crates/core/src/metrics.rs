//! Run metrics: everything the paper's §5 plots and tables need.

use dbsm_cert::CertWork;
use dbsm_db::AbortReason;
use dbsm_gcs::GcsMetrics;
use dbsm_sim::stats::Samples;
use dbsm_sim::SimTime;
use dbsm_tpcc::TxnClass;

/// Per-class counters and latency samples.
#[derive(Debug, Clone, Default)]
pub struct ClassStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Commits.
    pub committed: u64,
    /// Aborts by deliberate rollback.
    pub aborted_user: u64,
    /// Aborts by write-write conflict (waiter on a committed lock).
    pub aborted_ww: u64,
    /// Aborts by remote preemption.
    pub aborted_remote: u64,
    /// Aborts by certification.
    pub aborted_cert: u64,
    /// End-to-end latency of committed transactions, in milliseconds.
    pub latencies_ms: Samples,
}

impl ClassStats {
    /// Total aborts, any reason.
    pub fn aborted(&self) -> u64 {
        self.aborted_user + self.aborted_ww + self.aborted_remote + self.aborted_cert
    }

    /// Abort rate in percent (aborts / completed).
    pub fn abort_rate(&self) -> f64 {
        let done = self.committed + self.aborted();
        if done == 0 {
            0.0
        } else {
            self.aborted() as f64 * 100.0 / done as f64
        }
    }

    pub(crate) fn record_abort(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::User => self.aborted_user += 1,
            AbortReason::WwConflict => self.aborted_ww += 1,
            AbortReason::RemotePreempt => self.aborted_remote += 1,
            AbortReason::Certification => self.aborted_cert += 1,
        }
    }
}

/// Total certification work performed across all sites in one run — the
/// observable that distinguishes the backends: the linear scan accumulates
/// `history_scanned`/`comparisons`, the indexed backend accumulates
/// `probes`, and the sharded backend splits its probes into the serial
/// total (`probes`) and the critical path (`critical_probes`, the
/// most-loaded shard of each request) with the shard fan-out
/// (`shard_touches`). Decisions are identical either way; this is the cost
/// ledger. Price the two views in nanoseconds with
/// [`CertCostModel::total_work_ns`] and [`CertCostModel::critical_path_ns`].
///
/// [`CertCostModel::total_work_ns`]: crate::CertCostModel::total_work_ns
/// [`CertCostModel::critical_path_ns`]: crate::CertCostModel::critical_path_ns
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertWorkTotals {
    /// Certifications performed (update + local read-only validations).
    pub certifications: u64,
    /// Committed transactions examined by linear scans.
    pub history_scanned: u64,
    /// Ordered-merge comparison steps by linear scans.
    pub comparisons: u64,
    /// Index lookups by the indexed and sharded backends (all shards).
    pub probes: u64,
    /// Critical-path index lookups: each request contributes its
    /// most-loaded shard's probes (sharded backend; zero otherwise).
    pub critical_probes: u64,
    /// Shards touched, summed over certifications (sharded backend; zero
    /// otherwise).
    pub shard_touches: u64,
    /// Nanoseconds speculative probe work spent *queued* behind earlier
    /// requests on its critical shard server (pipelined runs; zero
    /// otherwise) — the latency cost of shard imbalance.
    pub queue_ns: u64,
    /// Nanoseconds of critical-server probe *service* performed for
    /// speculative certifications (pipelined runs; zero otherwise).
    pub service_ns: u64,
    /// Nanoseconds spent joining per-shard verdicts into outcomes
    /// (pipelined runs; zero otherwise).
    pub merge_ns: u64,
    /// Data-dependent certification nanoseconds charged inline to the
    /// commit/delivery loop — the *stall* the pipeline exists to remove.
    /// Synchronous runs accumulate every conflict check here; pipelined
    /// runs only their delta revalidations and speculation misses.
    pub stall_ns: u64,
    /// Speculations whose answer was final at confirmation — zero
    /// delta work on the delivery loop (pipelined runs).
    pub spec_hits: u64,
    /// Speculative passes overtaken by later commits and upheld by the
    /// delta re-probe (pipelined runs).
    pub spec_revalidated: u64,
    /// Speculative passes overturned into aborts by the delta re-probe —
    /// the reordering-rollback path (pipelined runs).
    pub spec_rollbacks: u64,
    /// Confirmations that found no speculation and certified from scratch
    /// (pipelined runs).
    pub spec_misses: u64,
    /// Read/write-set entries that fell inside the certifying site's
    /// replicated span, summed over partial-replication certifications
    /// (zero under full replication).
    pub span_covered: u64,
    /// Read/write-set entries examined under partial replication, local or
    /// not (zero under full replication).
    pub span_total: u64,
    /// Per-span verdicts merged for cross-span transactions: each remote
    /// span owner that had to vote counts once (partial replication only).
    pub vote_rounds: u64,
    /// Update transactions whose read/write set crossed the origin site's
    /// span and therefore needed a vote round (partial replication only).
    pub cross_span_txns: u64,
}

impl CertWorkTotals {
    pub(crate) fn record(&mut self, work: CertWork) {
        self.certifications += 1;
        self.history_scanned += work.history_scanned as u64;
        self.comparisons += work.comparisons as u64;
        self.probes += work.probes as u64;
        self.critical_probes += work.critical_probes as u64;
        self.shard_touches += work.shards_touched as u64;
    }

    /// Accumulates one partial-replication certification's span coverage:
    /// `covered` of the request's `total` read/write-set entries were local
    /// to the certifying site's span.
    pub(crate) fn record_span(&mut self, covered: u64, total: u64) {
        self.span_covered += covered;
        self.span_total += total;
    }

    /// Accumulates the probe work of a *speculative* pass without counting
    /// a certification: the request is counted once, when it confirms.
    pub(crate) fn record_spec_probe(&mut self, work: CertWork) {
        self.history_scanned += work.history_scanned as u64;
        self.comparisons += work.comparisons as u64;
        self.probes += work.probes as u64;
        self.critical_probes += work.critical_probes as u64;
        self.shard_touches += work.shards_touched as u64;
    }

    /// Accumulates one speculative fan-out's latency decomposition.
    pub(crate) fn record_queueing(
        &mut self,
        queued: std::time::Duration,
        service: std::time::Duration,
        merge: std::time::Duration,
    ) {
        self.queue_ns += queued.as_nanos() as u64;
        self.service_ns += service.as_nanos() as u64;
        self.merge_ns += merge.as_nanos() as u64;
    }

    /// Tallies how one confirmation resolved against its speculation.
    pub(crate) fn record_spec(&mut self, res: dbsm_cert::SpecResolution) {
        use dbsm_cert::SpecResolution::*;
        match res {
            Hit => self.spec_hits += 1,
            Revalidated => self.spec_revalidated += 1,
            Rollback => self.spec_rollbacks += 1,
            Miss => self.spec_misses += 1,
        }
    }

    /// Mean linear-scan comparisons per certification.
    pub fn mean_comparisons(&self) -> f64 {
        if self.certifications == 0 {
            0.0
        } else {
            self.comparisons as f64 / self.certifications as f64
        }
    }

    /// Mean index probes per certification.
    pub fn mean_probes(&self) -> f64 {
        if self.certifications == 0 {
            0.0
        } else {
            self.probes as f64 / self.certifications as f64
        }
    }

    /// Mean critical-path probes per certification (sharded runs).
    pub fn mean_critical_probes(&self) -> f64 {
        if self.certifications == 0 {
            0.0
        } else {
            self.critical_probes as f64 / self.certifications as f64
        }
    }

    /// Mean shards touched per certification (0 for unsharded backends).
    pub fn mean_shards_touched(&self) -> f64 {
        if self.certifications == 0 {
            0.0
        } else {
            self.shard_touches as f64 / self.certifications as f64
        }
    }

    /// Effective parallel speedup of the probe work: total probes over
    /// critical-path probes. 1.0 means serial (including every unsharded
    /// run); the ceiling is the mean shard fan-out.
    pub fn parallel_speedup(&self) -> f64 {
        if self.critical_probes == 0 {
            1.0
        } else {
            self.probes as f64 / self.critical_probes as f64
        }
    }

    /// Per-shard load imbalance: the mean shard fan-out divided by the
    /// achieved speedup. 1.0 means every touched shard carried equal probe
    /// load; larger values mean skew concentrated the work (0.0 when no
    /// sharding was recorded).
    pub fn shard_imbalance(&self) -> f64 {
        if self.critical_probes == 0 || self.shard_touches == 0 {
            0.0
        } else {
            self.mean_shards_touched() / self.parallel_speedup()
        }
    }

    fn mean_us(&self, ns: u64) -> f64 {
        if self.certifications == 0 {
            0.0
        } else {
            ns as f64 / 1e3 / self.certifications as f64
        }
    }

    /// Mean microseconds per certification spent queued on the critical
    /// shard server (0 for synchronous runs).
    pub fn mean_queue_us(&self) -> f64 {
        self.mean_us(self.queue_ns)
    }

    /// Mean microseconds per certification of critical-server probe
    /// service (0 for synchronous runs).
    pub fn mean_service_us(&self) -> f64 {
        self.mean_us(self.service_ns)
    }

    /// Mean microseconds per certification of verdict merging (0 for
    /// synchronous runs).
    pub fn mean_merge_us(&self) -> f64 {
        self.mean_us(self.merge_ns)
    }

    /// Mean microseconds per certification the commit/delivery loop stalled
    /// on data-dependent conflict checks. The pipelined path drives this
    /// toward zero; the synchronous path pays the full check here.
    pub fn mean_stall_us(&self) -> f64 {
        self.mean_us(self.stall_ns)
    }

    /// Fraction of examined read/write-set entries that were local to the
    /// certifying site's span — 1.0 under full replication (nothing was
    /// filtered) and k/N-ish under a balanced partial placement.
    pub fn span_fraction(&self) -> f64 {
        if self.span_total == 0 {
            1.0
        } else {
            self.span_covered as f64 / self.span_total as f64
        }
    }

    /// Confirmations resolved, any way (0 for synchronous runs).
    pub fn spec_total(&self) -> u64 {
        self.spec_hits + self.spec_revalidated + self.spec_rollbacks + self.spec_misses
    }

    /// Fraction of confirmations resolved with zero delta work.
    pub fn spec_hit_rate(&self) -> f64 {
        let total = self.spec_total();
        if total == 0 {
            0.0
        } else {
            self.spec_hits as f64 / total as f64
        }
    }
}

/// Total-order announcement work across all sites in one run — the
/// observable for the announcement-batching ablation (§5.3): how many
/// `SeqAnn` messages the sequencer actually spent, how many assignments
/// each carried, and how many assignments rode application fragments for
/// free. Delivery order is identical under every batching policy; this is
/// the cost ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnWorkTotals {
    /// `SeqAnn` announcement messages sent through the reliable layer.
    pub announcements: u64,
    /// Assignments carried by those announcement messages.
    pub assigns_carried: u64,
    /// Assignments piggybacked on application fragments (zero extra
    /// messages).
    pub piggybacked: u64,
}

impl AnnWorkTotals {
    pub(crate) fn record_site(&mut self, m: &GcsMetrics) {
        self.announcements += m.ann_sent;
        self.assigns_carried += m.ann_assigns;
        self.piggybacked += m.ann_piggybacked;
    }

    /// Mean assignments per announcement message (batch size).
    pub fn mean_batch(&self) -> f64 {
        if self.announcements == 0 {
            0.0
        } else {
            self.assigns_carried as f64 / self.announcements as f64
        }
    }

    /// All assignments announced, by message or by piggyback.
    pub fn assigns_total(&self) -> u64 {
        self.assigns_carried + self.piggybacked
    }
}

/// Fault-machinery work across one run — the observable that prices each
/// fault scenario family (§5.3 and the partition/duplicate/burst families
/// beyond it): how many duplicate packets the network injected and how many
/// the GCS dedup path absorbed, how much traffic died at partition
/// boundaries, and how many view installs the membership machinery
/// performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultWorkTotals {
    /// Duplicate packet copies injected by the duplicate-delivery fault.
    pub dup_injected: u64,
    /// Duplicate fragments discarded by the GCS dedup path (includes
    /// retransmission overlap, which rides the same counter).
    pub dup_discarded: u64,
    /// Packets dropped at a partition boundary.
    pub partition_drops: u64,
    /// View installs performed, summed across all sites (a single
    /// reconfiguration of `n` surviving sites counts `n`).
    pub view_installs: u64,
}

impl FaultWorkTotals {
    pub(crate) fn record_site(&mut self, m: &GcsMetrics) {
        self.dup_discarded += m.duplicates;
        self.view_installs += m.view_changes;
    }
}

/// Wire-level certification-vote work across one run — the observable for
/// the decentralized vote round (partial replication): how many `Vote`
/// records the stacks put on the wire, how many rode outgoing data frames
/// for free, how many needed resending, and how long origin sites waited
/// from a transaction's total-order delivery to its quorum decision. All
/// zeros under full replication (no votes are cast).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VoteWireTotals {
    /// Vote records sent through the reliable layer, summed over sites.
    pub sent: u64,
    /// Vote records received (loopback self-delivery included).
    pub received: u64,
    /// Vote records that rode outgoing data frames' MTU slack instead of
    /// costing a dedicated message.
    pub piggybacked: u64,
    /// Vote records retransmitted by the heartbeat resend path.
    pub resends: u64,
    /// Update transactions decided at their origin site via the wire-vote
    /// quorum (one per update transaction under partial replication).
    pub decided: u64,
    /// Total nanoseconds origin sites spent between a transaction's
    /// total-order delivery and its covering-quorum decision.
    pub wait_ns: u64,
    /// Vote records sent per site — distinguishes a site that rejoined and
    /// resumed voting (nonzero in its latest incarnation) from one that
    /// stayed quiet.
    pub per_site_sent: Vec<u64>,
}

impl VoteWireTotals {
    pub(crate) fn record_site(&mut self, m: &GcsMetrics) {
        self.sent += m.votes_sent;
        self.received += m.votes_received;
        self.piggybacked += m.votes_piggybacked;
        self.resends += m.vote_resends;
        self.per_site_sent.push(m.votes_sent);
    }

    /// Mean milliseconds an origin site waited from total-order delivery
    /// to the quorum decision.
    pub fn mean_wait_ms(&self) -> f64 {
        if self.decided == 0 {
            0.0
        } else {
            self.wait_ns as f64 / 1e6 / self.decided as f64
        }
    }

    /// Fraction of sent votes that piggybacked on data frames.
    pub fn piggyback_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.piggybacked as f64 / self.sent as f64
        }
    }
}

/// Recovery-machinery work across one run — the observable that prices the
/// snapshot + delta-log rejoin path: how many state transfers live members
/// served, how many bytes crossed the wire as snapshot versus delta log, how
/// many committed entries the rejoiner replayed, and how long each restarted
/// site took from restart to serving clients again (time-to-useful).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryWorkTotals {
    /// Sites that completed the rejoin protocol (restart → view install →
    /// state adoption → serving clients).
    pub rejoins: u64,
    /// State-transfer snapshots served by live members (one per grant).
    pub snapshots_served: u64,
    /// Bytes of database snapshot shipped, priced per warehouse owned by
    /// the rejoiner (all warehouses under full replication).
    pub snapshot_bytes: u64,
    /// Bytes of delta log shipped: committed entries between the
    /// rejoiner's pre-crash commit point and the transfer cut.
    pub delta_bytes: u64,
    /// Committed entries the rejoiner replayed from the delta log.
    pub replayed_entries: u64,
    /// Total nanoseconds from restart to serving clients, summed over
    /// rejoins.
    pub ttu_ns_total: u64,
}

impl RecoveryWorkTotals {
    /// Total state-transfer bytes (snapshot + delta log).
    pub fn total_bytes(&self) -> u64 {
        self.snapshot_bytes + self.delta_bytes
    }

    /// Mean time-to-useful per rejoin, in milliseconds.
    pub fn mean_ttu_ms(&self) -> f64 {
        if self.rejoins == 0 {
            0.0
        } else {
            self.ttu_ns_total as f64 / 1e6 / self.rejoins as f64
        }
    }
}

/// Re-placement work across one run — the observable that prices re-homing
/// spans stranded by churn: how many view changes forced an election, how
/// many spans moved to a surviving adopter, how many bytes of span state
/// crossed the wire, how long each re-homed span took from view install to
/// serving again, how many in-flight vote rounds had to be re-collected
/// against the new owner, and how long stranded clients sat parked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplacementWorkTotals {
    /// View changes that stranded at least one span and triggered a
    /// rendezvous election plus state transfer.
    pub replacements: u64,
    /// Spans re-homed onto a surviving adopter.
    pub rehomed_spans: u64,
    /// Bytes of span state shipped to adopters, priced per warehouse.
    pub transfer_bytes: u64,
    /// Total nanoseconds from view install to the adopter serving the
    /// span, summed over re-homed spans.
    pub time_to_serving_ns_total: u64,
    /// In-flight cross-span vote rounds whose adopter vote had to be
    /// re-collected under the new ownership.
    pub vote_rounds_recollected: u64,
    /// Total nanoseconds clients of stranded spans spent parked before the
    /// transfer completed and they resumed.
    pub parked_ns: u64,
}

impl ReplacementWorkTotals {
    /// Mean view-install-to-serving time per re-homed span, in
    /// milliseconds.
    pub fn mean_time_to_serving_ms(&self) -> f64 {
        if self.rehomed_spans == 0 {
            0.0
        } else {
            self.time_to_serving_ns_total as f64 / 1e6 / self.rehomed_spans as f64
        }
    }

    /// Total client parked time in milliseconds.
    pub fn parked_ms(&self) -> f64 {
        self.parked_ns as f64 / 1e6
    }
}

/// One completed rejoin: which site came back, where its retained log
/// stood, where the transfer cut was, and how long until it served clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinRecord {
    /// The site that rejoined.
    pub site: u16,
    /// Commit-log entries the site retained from before the crash.
    pub kept: usize,
    /// Reference-log position of the transfer cut: entries `[kept, cut)`
    /// arrived as state transfer, not as individual commits.
    pub cut: usize,
    /// Restart to serving clients.
    pub ttu: SimTime,
}

/// Per-site resource usage over the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteUsage {
    /// Fraction of CPU time busy (all jobs).
    pub cpu_total: f64,
    /// Fraction of CPU time busy with protocol (real) jobs.
    pub cpu_real: f64,
    /// Storage utilisation fraction.
    pub disk: f64,
}

/// Everything measured in one experiment run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Per-class statistics, indexed by [`TxnClass::index`].
    pub per_class: Vec<ClassStats>,
    /// Certification latency samples (commit-request to outcome at the
    /// origin site), in milliseconds — Fig. 7(b).
    pub cert_latencies_ms: Samples,
    /// Certification work totals across all sites (scans vs probes).
    pub cert_work: CertWorkTotals,
    /// Announcement work totals across all sites (messages vs piggybacks).
    pub ann_work: AnnWorkTotals,
    /// Fault-machinery work: duplicates injected/absorbed, partition drops,
    /// view installs.
    pub fault_work: FaultWorkTotals,
    /// Wire-level certification-vote work: votes sent/piggybacked/resent
    /// and origin-side quorum wait (partial replication; zero otherwise).
    pub vote_wire: VoteWireTotals,
    /// Committed transactions per site, in commit order (safety check).
    pub commit_logs: Vec<Vec<(u16, u64)>>,
    /// Per-site resource usage (Fig. 6a/6b, Fig. 7c).
    pub site_usage: Vec<SiteUsage>,
    /// Total bytes put on the wire by all hosts.
    pub network_tx_bytes: u64,
    /// Simulated duration of the measured portion.
    pub elapsed: SimTime,
    /// Sites crashed by fault injection (and not yet rejoined).
    pub crashed_sites: Vec<u16>,
    /// Recovery-machinery work: snapshots served, transfer bytes, replayed
    /// entries, time-to-useful.
    pub recovery_work: RecoveryWorkTotals,
    /// One record per completed rejoin, in completion order.
    pub rejoins: Vec<RejoinRecord>,
    /// Re-placement work: spans re-homed after churn stranded them, bytes
    /// transferred, vote rounds re-collected, client parked time.
    pub replacement_work: ReplacementWorkTotals,
}

impl RunMetrics {
    /// Creates metrics for `sites` sites.
    pub fn new(sites: usize) -> Self {
        RunMetrics {
            per_class: (0..TxnClass::ALL.len()).map(|_| ClassStats::default()).collect(),
            commit_logs: vec![Vec::new(); sites],
            site_usage: vec![SiteUsage::default(); sites],
            ..RunMetrics::default()
        }
    }

    /// Stats of one class.
    pub fn class(&self, c: TxnClass) -> &ClassStats {
        &self.per_class[c.index() as usize]
    }

    /// Mutable stats of one class.
    pub fn class_mut(&mut self, c: TxnClass) -> &mut ClassStats {
        &mut self.per_class[c.index() as usize]
    }

    /// Total committed transactions.
    pub fn committed(&self) -> u64 {
        self.per_class.iter().map(|c| c.committed).sum()
    }

    /// Total aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.per_class.iter().map(|c| c.aborted()).sum()
    }

    /// Committed transactions per minute of simulated time (Fig. 5a).
    pub fn tpm(&self) -> f64 {
        let mins = self.elapsed.as_secs_f64() / 60.0;
        if mins == 0.0 {
            0.0
        } else {
            self.committed() as f64 / mins
        }
    }

    /// Overall abort rate in percent (the "All" row of Tables 1 and 2).
    pub fn abort_rate(&self) -> f64 {
        let done = self.committed() + self.aborted();
        if done == 0 {
            0.0
        } else {
            self.aborted() as f64 * 100.0 / done as f64
        }
    }

    /// Mean latency over all committed transactions, in milliseconds
    /// (Fig. 5b).
    pub fn mean_latency_ms(&self) -> f64 {
        let mut all = Samples::new();
        for c in &self.per_class {
            all.merge(&c.latencies_ms);
        }
        all.mean()
    }

    /// All committed-transaction latencies pooled (Fig. 7a ECDFs).
    pub fn pooled_latencies_ms(&self) -> Samples {
        let mut all = Samples::new();
        for c in &self.per_class {
            all.merge(&c.latencies_ms);
        }
        all
    }

    /// Network throughput in KB/s of simulated time (Fig. 6c).
    pub fn network_kbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.network_tx_bytes as f64 / 1024.0 / secs
        }
    }

    /// Mean CPU usage across sites (total / real jobs), as fractions.
    pub fn mean_cpu_usage(&self) -> (f64, f64) {
        if self.site_usage.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.site_usage.len() as f64;
        (
            self.site_usage.iter().map(|u| u.cpu_total).sum::<f64>() / n,
            self.site_usage.iter().map(|u| u.cpu_real).sum::<f64>() / n,
        )
    }

    /// Per-site rejoin cuts in the shape [`check_logs_rejoined_multi`]
    /// expects, sized to `commit_logs`. A site that never rejoined maps to
    /// an empty list; a site a plan restarted several times keeps **every**
    /// completed rejoin's cut, in completion order — the chain checker
    /// re-bases each log segment on the cut that preceded it.
    ///
    /// [`check_logs_rejoined_multi`]: dbsm_fault::check_logs_rejoined_multi
    pub fn rejoin_cuts(&self) -> Vec<Vec<dbsm_fault::RejoinCut>> {
        let mut cuts = vec![Vec::new(); self.commit_logs.len()];
        for r in &self.rejoins {
            cuts[r.site as usize].push(dbsm_fault::RejoinCut { kept: r.kept, cut: r.cut });
        }
        cuts
    }

    /// Mean disk utilisation across sites.
    pub fn mean_disk_usage(&self) -> f64 {
        if self.site_usage.is_empty() {
            return 0.0;
        }
        self.site_usage.iter().map(|u| u.disk).sum::<f64>() / self.site_usage.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_rate_math() {
        let mut m = RunMetrics::new(1);
        let c = m.class_mut(TxnClass::NewOrder);
        c.committed = 90;
        c.record_abort(AbortReason::WwConflict);
        for _ in 0..9 {
            c.record_abort(AbortReason::Certification);
        }
        assert_eq!(c.aborted(), 10);
        assert!((c.abort_rate() - 10.0).abs() < 1e-9);
        assert!((m.abort_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tpm_uses_elapsed_time() {
        let mut m = RunMetrics::new(1);
        m.class_mut(TxnClass::PaymentShort).committed = 300;
        m.elapsed = SimTime::from_secs(120);
        assert!((m.tpm() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn pooled_latencies_merge_classes() {
        let mut m = RunMetrics::new(1);
        m.class_mut(TxnClass::NewOrder).latencies_ms.record(5.0);
        m.class_mut(TxnClass::PaymentLong).latencies_ms.record(15.0);
        let pooled = m.pooled_latencies_ms();
        assert_eq!(pooled.len(), 2);
        assert!((m.mean_latency_ms() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::new(2);
        assert_eq!(m.tpm(), 0.0);
        assert_eq!(m.abort_rate(), 0.0);
        assert_eq!(m.network_kbps(), 0.0);
        assert_eq!(m.mean_cpu_usage(), (0.0, 0.0));
        assert_eq!(m.cert_work.mean_comparisons(), 0.0);
        assert_eq!(m.cert_work.mean_probes(), 0.0);
    }

    #[test]
    fn ann_work_totals_accumulate_and_average() {
        let mut t = AnnWorkTotals::default();
        let site = GcsMetrics {
            ann_sent: 4,
            ann_assigns: 12,
            ann_piggybacked: 5,
            ..GcsMetrics::default()
        };
        t.record_site(&site);
        t.record_site(&GcsMetrics::default()); // non-sequencer site: all zero
        assert_eq!(t.announcements, 4);
        assert_eq!(t.assigns_carried, 12);
        assert_eq!(t.piggybacked, 5);
        assert_eq!(t.assigns_total(), 17);
        assert!((t.mean_batch() - 3.0).abs() < 1e-12);
        assert_eq!(AnnWorkTotals::default().mean_batch(), 0.0);
    }

    #[test]
    fn fault_work_totals_accumulate_across_sites() {
        let mut t = FaultWorkTotals::default();
        t.record_site(&GcsMetrics { duplicates: 7, view_changes: 1, ..GcsMetrics::default() });
        t.record_site(&GcsMetrics { duplicates: 3, view_changes: 1, ..GcsMetrics::default() });
        assert_eq!(t.dup_discarded, 10);
        assert_eq!(t.view_installs, 2);
        assert_eq!(t.dup_injected, 0, "network-side counters are filled by the runner");
    }

    #[test]
    fn cert_work_totals_accumulate_and_average() {
        let mut t = CertWorkTotals::default();
        t.record(CertWork { history_scanned: 3, comparisons: 12, ..CertWork::default() });
        t.record(CertWork { probes: 8, ..CertWork::default() });
        assert_eq!(t.certifications, 2);
        assert_eq!(t.history_scanned, 3);
        assert_eq!(t.comparisons, 12);
        assert_eq!(t.probes, 8);
        assert!((t.mean_comparisons() - 6.0).abs() < 1e-12);
        assert!((t.mean_probes() - 4.0).abs() < 1e-12);
        // Unsharded work reports serial parallelism and no imbalance.
        assert_eq!(t.parallel_speedup(), 1.0);
        assert_eq!(t.shard_imbalance(), 0.0);
        assert_eq!(t.mean_shards_touched(), 0.0);
    }

    #[test]
    fn speculative_work_counts_one_certification_per_request() {
        use std::time::Duration;
        let mut t = CertWorkTotals::default();
        // Tentative pass: probes recorded, no certification counted yet.
        t.record_spec_probe(CertWork { probes: 12, ..CertWork::default() });
        t.record_queueing(
            Duration::from_micros(4),
            Duration::from_micros(2),
            Duration::from_nanos(500),
        );
        assert_eq!(t.certifications, 0);
        assert_eq!(t.probes, 12);
        // Confirmation: the request is counted exactly once.
        t.record(CertWork::default());
        t.record_spec(dbsm_cert::SpecResolution::Hit);
        assert_eq!(t.certifications, 1);
        assert_eq!(t.spec_hits, 1);
        assert!((t.mean_queue_us() - 4.0).abs() < 1e-12);
        assert!((t.mean_service_us() - 2.0).abs() < 1e-12);
        assert!((t.mean_merge_us() - 0.5).abs() < 1e-12);
        assert_eq!(t.mean_stall_us(), 0.0, "a hit stalls the delivery loop for nothing");
    }

    #[test]
    fn spec_resolutions_tally_and_rate() {
        let mut t = CertWorkTotals::default();
        use dbsm_cert::SpecResolution::*;
        for res in [Hit, Hit, Hit, Revalidated, Rollback, Miss] {
            t.record_spec(res);
        }
        assert_eq!(t.spec_total(), 6);
        assert_eq!(
            (t.spec_hits, t.spec_revalidated, t.spec_rollbacks, t.spec_misses),
            (3, 1, 1, 1)
        );
        assert!((t.spec_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CertWorkTotals::default().spec_hit_rate(), 0.0);
    }

    #[test]
    fn span_coverage_accumulates_and_defaults_to_full() {
        let mut t = CertWorkTotals::default();
        assert_eq!(t.span_fraction(), 1.0, "full replication filters nothing");
        t.record_span(3, 10);
        t.record_span(2, 10);
        assert_eq!((t.span_covered, t.span_total), (5, 20));
        assert!((t.span_fraction() - 0.25).abs() < 1e-12);
        t.vote_rounds += 2;
        t.cross_span_txns += 1;
        assert_eq!((t.vote_rounds, t.cross_span_txns), (2, 1));
    }

    #[test]
    fn recovery_work_totals_price_the_transfer_and_average_ttu() {
        let mut t = RecoveryWorkTotals::default();
        assert_eq!(t.mean_ttu_ms(), 0.0);
        t.rejoins = 2;
        t.snapshots_served = 2;
        t.snapshot_bytes = 4 << 20;
        t.delta_bytes = 1536;
        t.replayed_entries = 2;
        t.ttu_ns_total = 3_000_000_000;
        assert_eq!(t.total_bytes(), (4 << 20) + 1536);
        assert!((t.mean_ttu_ms() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn replacement_work_totals_average_serving_time_per_span() {
        let mut t = ReplacementWorkTotals::default();
        assert_eq!(t.mean_time_to_serving_ms(), 0.0);
        assert_eq!(t.parked_ms(), 0.0);
        t.replacements = 1;
        t.rehomed_spans = 4;
        t.transfer_bytes = 8 << 20;
        t.time_to_serving_ns_total = 6_000_000_000;
        t.vote_rounds_recollected = 3;
        t.parked_ns = 2_500_000;
        assert!((t.mean_time_to_serving_ms() - 1500.0).abs() < 1e-9);
        assert!((t.parked_ms() - 2.5).abs() < 1e-12);
        assert_eq!(RunMetrics::new(2).replacement_work, ReplacementWorkTotals::default());
    }

    #[test]
    fn rejoin_cuts_keep_every_rejoin_per_site() {
        let mut m = RunMetrics::new(3);
        m.rejoins.push(RejoinRecord { site: 2, kept: 4, cut: 9, ttu: SimTime::from_secs(1) });
        m.rejoins.push(RejoinRecord { site: 2, kept: 9, cut: 20, ttu: SimTime::from_secs(1) });
        let cuts = m.rejoin_cuts();
        assert_eq!(cuts.len(), 3);
        assert!(cuts[0].is_empty());
        assert!(cuts[1].is_empty());
        assert_eq!(
            cuts[2],
            vec![
                dbsm_fault::RejoinCut { kept: 4, cut: 9 },
                dbsm_fault::RejoinCut { kept: 9, cut: 20 },
            ],
        );
    }

    #[test]
    fn vote_wire_totals_accumulate_and_average() {
        let mut t = VoteWireTotals::default();
        t.record_site(&GcsMetrics {
            votes_sent: 10,
            votes_received: 30,
            votes_piggybacked: 6,
            vote_resends: 2,
            ..GcsMetrics::default()
        });
        t.record_site(&GcsMetrics { votes_received: 10, ..GcsMetrics::default() });
        assert_eq!((t.sent, t.received, t.piggybacked, t.resends), (10, 40, 6, 2));
        assert_eq!(t.per_site_sent, vec![10, 0]);
        assert!((t.piggyback_rate() - 0.6).abs() < 1e-12);
        assert_eq!(t.mean_wait_ms(), 0.0, "no decisions recorded yet");
        t.decided = 4;
        t.wait_ns = 2_000_000;
        assert!((t.mean_wait_ms() - 0.5).abs() < 1e-12);
        assert_eq!(VoteWireTotals::default().piggyback_rate(), 0.0);
    }

    #[test]
    fn sharded_work_totals_report_speedup_and_imbalance() {
        let mut t = CertWorkTotals::default();
        // Request 1: 30 probes over 3 shards, worst 10 (balanced).
        t.record(CertWork {
            probes: 30,
            critical_probes: 10,
            shards_touched: 3,
            ..CertWork::default()
        });
        // Request 2: 20 probes over 2 shards, worst 18 (skewed).
        t.record(CertWork {
            probes: 20,
            critical_probes: 18,
            shards_touched: 2,
            ..CertWork::default()
        });
        assert_eq!(t.critical_probes, 28);
        assert_eq!(t.shard_touches, 5);
        assert!((t.mean_critical_probes() - 14.0).abs() < 1e-12);
        assert!((t.mean_shards_touched() - 2.5).abs() < 1e-12);
        let speedup = t.parallel_speedup();
        assert!((speedup - 50.0 / 28.0).abs() < 1e-12);
        let imbalance = t.shard_imbalance();
        assert!(imbalance > 1.0, "skew shows up as imbalance {imbalance}");
        assert!((imbalance - 2.5 / speedup).abs() < 1e-12);
    }
}

//! Experiment configuration: every knob the paper's §5 varies.

use crate::placement::{PlacementError, PlacementMap, PlacementStrategy};
use dbsm_cert::{CertBackendKind, CertWork};
use dbsm_db::{CcPolicy, StorageConfig};
use dbsm_fault::{FaultPlan, PlanError};
use dbsm_gcs::{AnnBatchPolicy, GcsConfig};
use std::fmt;
use std::time::Duration;

/// How a site orders certification relative to total-order delivery.
///
/// The synchronous path is the seed behaviour: every delivered request
/// certifies inline, so the delivery loop stalls for the full conflict
/// check. The pipelined path overlaps certification with the broadcast
/// (Emerson & Ezhilchelvan's optimistic-delivery pipeline): requests
/// certify *speculatively* on tentative (pre-total-order) delivery, queue
/// their probe work on the per-site shard servers, and the total-order
/// delivery merely confirms — or rolls back — the speculation. Decisions
/// are bit-identical either way; what moves is where the latency lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitPath {
    /// Certify inline at total-order delivery (seed behaviour).
    #[default]
    Synchronous,
    /// Certify speculatively at tentative delivery; confirm in total order.
    Pipelined,
}

impl CommitPath {
    /// Stable lowercase name (used in bench rows and report labels).
    pub fn name(self) -> &'static str {
        match self {
            CommitPath::Synchronous => "sync",
            CommitPath::Pipelined => "pipelined",
        }
    }
}

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of replicas (1 = centralized baseline).
    pub sites: usize,
    /// CPUs per site (the paper's centralized baselines use 1, 3 and 6).
    pub cpus_per_site: usize,
    /// Emulated clients, split equally across sites.
    pub clients: usize,
    /// Stop after this many completed transactions (the paper runs 10 000).
    pub target_txns: u64,
    /// Hard cap on simulated time.
    pub max_sim: Duration,
    /// Master seed for every stochastic component.
    pub seed: u64,
    /// Mean think time between client requests.
    pub think_mean: Duration,
    /// Storage configuration per site.
    pub storage: StorageConfig,
    /// Concurrency-control policy.
    pub policy: CcPolicy,
    /// Group-communication configuration; `None` uses
    /// [`GcsConfig::lan`] for the configured number of sites.
    pub gcs: Option<GcsConfig>,
    /// Faults to inject (§5.3).
    pub faults: FaultPlan,
    /// Validate read-only transactions against recently committed
    /// write-sets (on, as in the prototype; stock-level is always exempt).
    pub certify_read_only: bool,
    /// Per-table read-set size beyond which certification upgrades to a
    /// table-level entry (§3.3).
    pub table_lock_threshold: usize,
    /// Committed write-sets retained by the certifier before garbage
    /// collection.
    pub history_window: u64,
    /// Which certification backend every site runs: the indexed write
    /// history (default), the paper-faithful linear scan, or the sharded
    /// index keyed by the TPC-C home warehouse. All reach bit-identical
    /// decisions; they differ only in certification cost.
    pub cert_backend: CertBackendKind,
    /// Whether certification runs synchronously at delivery or overlapped
    /// with the total-order broadcast (see [`CommitPath`]).
    pub commit_path: CommitPath,
    /// Relative CPU speed (the CSRT's processor-speed scaling, §2.3);
    /// both simulated processing and real-code costs scale by it.
    pub cpu_speed: f64,
    /// Overrides the segment's one-way latency (wide-area what-if runs);
    /// `None` keeps the 50 µs LAN default.
    pub wan_latency: Option<Duration>,
    /// Partial-replication placement: which sites replicate each warehouse.
    /// `None` — or a map whose [`PlacementMap::is_full`] — runs classic
    /// full replication; a genuine k-of-N map routes clients to owner
    /// sites, restricts each site's certification to its span, and commits
    /// cross-span transactions through a vote round.
    pub placement: Option<PlacementMap>,
}

impl ExperimentConfig {
    /// A centralized (1-site) baseline with `cpus` processors.
    pub fn centralized(cpus: usize, clients: usize) -> Self {
        ExperimentConfig {
            sites: 1,
            cpus_per_site: cpus,
            clients,
            target_txns: 10_000,
            max_sim: Duration::from_secs(600),
            seed: 42,
            think_mean: Duration::from_secs(10),
            storage: StorageConfig::raid5_fibre(),
            policy: CcPolicy::MultiVersion,
            gcs: None,
            faults: FaultPlan::none(),
            certify_read_only: true,
            table_lock_threshold: 256,
            history_window: 4096,
            cert_backend: CertBackendKind::Indexed,
            commit_path: CommitPath::Synchronous,
            cpu_speed: 1.0,
            wan_latency: None,
            placement: None,
        }
    }

    /// A replicated configuration with `sites` single-CPU replicas
    /// (the paper's 3-site and 6-site setups).
    pub fn replicated(sites: usize, clients: usize) -> Self {
        ExperimentConfig { sites, cpus_per_site: 1, ..ExperimentConfig::centralized(1, clients) }
    }

    /// Caps the run length (useful for fast tests and examples).
    pub fn with_target(mut self, txns: u64) -> Self {
        self.target_txns = txns;
        self
    }

    /// Sets the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the certification backend.
    pub fn with_cert_backend(mut self, backend: CertBackendKind) -> Self {
        self.cert_backend = backend;
        self
    }

    /// Selects the commit path (synchronous or pipelined certification).
    pub fn with_commit_path(mut self, path: CommitPath) -> Self {
        self.commit_path = path;
        self
    }

    /// Sets the partial-replication placement map.
    pub fn with_placement(mut self, placement: PlacementMap) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Convenience: replicates each warehouse on `k` of the configured
    /// sites under the round-robin strategy. `k >= sites` clears the map —
    /// that is full replication, which runs the classic unrestricted path
    /// (set after [`ExperimentConfig::replicated`] fixes the site count).
    pub fn with_replication_factor(mut self, k: usize) -> Self {
        self.placement = if k >= self.sites {
            None
        } else {
            Some(PlacementMap::new(self.sites, k, PlacementStrategy::RoundRobin))
        };
        self
    }

    /// Selects the sequencer announcement batching policy, materializing the
    /// default GCS configuration if none was set explicitly.
    pub fn with_ann_policy(mut self, policy: AnnBatchPolicy) -> Self {
        let mut gcs = self.gcs_config();
        gcs.ann_policy = policy;
        self.gcs = Some(gcs);
        self
    }

    /// The effective GCS configuration.
    ///
    /// Plans containing a [`dbsm_fault::FaultSpec::Partition`] always run
    /// with **uniform (safe) delivery**, overriding
    /// [`GcsConfig::uniform_delivery`]: optimistic delivery speculates on
    /// orderings that only a minority may have seen, and across a
    /// primary-component change the next sequencer can legitimately re-make
    /// them — a minority site that already acted on the old ordering would
    /// have committed a divergent history. Uniform delivery (content *and*
    /// ordering stable before delivery) closes that window; the membership
    /// machinery's primary-component rule handles the rest.
    ///
    /// Plans containing a [`dbsm_fault::FaultSpec::Restart`] run uniform for
    /// the same reason: the rejoin chain check requires a halted site's
    /// commits to be a strict prefix of the survivors' log, and only uniform
    /// delivery guarantees a site crashed mid-protocol never delivered an
    /// ordering the primary component later re-made.
    pub fn gcs_config(&self) -> GcsConfig {
        let mut gcs = self.gcs.clone().unwrap_or_else(|| GcsConfig::lan(self.sites));
        if self.faults.has_partition() || self.faults.has_restart() {
            gcs.uniform_delivery = true;
        }
        // The pipelined commit path certifies on tentative delivery, so the
        // stack must hand messages up as soon as the reliable layer
        // completes them (confirmation still waits for the total order).
        if self.commit_path == CommitPath::Pipelined {
            gcs.tentative_delivery = true;
        }
        gcs
    }

    /// Checks the configuration: the fault plan against the site count,
    /// the placement map (when set) against the site count, and the fault
    /// plan against the placement via [`FaultPlan::validate_coverage`] —
    /// only fault schedules leaving some instant with *zero live sites
    /// cluster-wide* are rejected, since a span stranded by the loss of its
    /// whole replica set now re-homes to an elected survivor instead of
    /// becoming unroutable. A placement pinned with
    /// [`PlacementMap::with_strict_coverage`] opts back into the static
    /// pre-churn rule ([`FaultPlan::validate_coverage_strict`]): any
    /// stranded replica set rejects the run. Both commit paths combine with
    /// partial replication: the pipelined path precomputes each site's wire
    /// vote at tentative delivery so the vote round overlaps the ordering
    /// round.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.faults.validate(self.sites)?;
        let Some(placement) = &self.placement else { return Ok(()) };
        placement.validate(self.sites)?;
        if placement.is_full() {
            return Ok(());
        }
        let warehouses = dbsm_tpcc::schema::warehouses_for_clients(self.clients);
        let replica_sets: Vec<Vec<u16>> = (0..warehouses as u64)
            .map(|w| placement.replicas(w).iter().map(|&s| s as u16).collect())
            .collect();
        if placement.strict_coverage {
            self.faults.validate_coverage_strict(self.sites, &replica_sets)?;
        } else {
            self.faults.validate_coverage(self.sites, &replica_sets)?;
        }
        Ok(())
    }
}

/// Why an [`ExperimentConfig`] was rejected by
/// [`ExperimentConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The fault plan is malformed, or strands a placement span
    /// ([`FaultPlan::validate_coverage`]).
    Fault(PlanError),
    /// The placement map is malformed.
    Placement(PlacementError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Fault(e) => write!(f, "{e}"),
            ConfigError::Placement(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<PlanError> for ConfigError {
    fn from(e: PlanError) -> Self {
        ConfigError::Fault(e)
    }
}

impl From<PlacementError> for ConfigError {
    fn from(e: PlacementError) -> Self {
        ConfigError::Placement(e)
    }
}

/// CPU cost constants for the certification real code under synthetic
/// profiling (the wall-clock mode measures instead). Calibrated so protocol
/// CPU lands in the paper's ≈1–2 % band (Fig. 7c).
///
/// Every backend is priced from the same [`CertWork`] record: the linear
/// scan reports merge `comparisons`, the indexed backend reports index
/// `probes`, and each dimension carries its own per-unit cost — a hash probe
/// plus binary search is dearer than one merge step, but the indexed backend
/// performs O(request) of them instead of O(window).
///
/// The sharded backend is priced as a **critical path**: its shards probe
/// concurrently, so a certification costs the *most-loaded* shard's probes
/// (`CertWork::critical_probes`) plus `merge_ns` per touched shard for
/// joining the per-shard verdicts — `max + merge`, not the serial sum. The
/// single-threaded backends report no shard fan-out and keep their exact
/// pre-sharding prices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertCostModel {
    /// Fixed cost of building + marshalling a request.
    pub marshal_fixed: Duration,
    /// Marshalling cost per byte, nanoseconds.
    pub marshal_per_byte_ns: f64,
    /// Fixed cost of unmarshalling + certifying.
    pub certify_fixed: Duration,
    /// Cost per ordered-merge comparison step (linear backend).
    pub per_comparison_ns: f64,
    /// Cost per index probe — hash lookup plus interval binary search
    /// (indexed and sharded backends).
    pub per_probe_ns: f64,
    /// Cost per touched shard of merging that shard's verdict into the
    /// request's outcome — the join step of an N-way parallel certification
    /// (sharded backend only). A shard's verdict is one word (the earliest
    /// conflicting sequence number it found, if any), so the merge is a
    /// cache-line read plus a min fold: cheap relative to a hash probe, but
    /// linear in the fan-out — the term that keeps "shard everything
    /// row-by-row" from pricing as free parallelism.
    pub merge_ns: f64,
    /// Fixed cost of confirming a speculation at total-order delivery
    /// (pipelined commit path): a hash-map lookup and a basis comparison —
    /// much cheaper than `certify_fixed`, which covers unmarshalling and
    /// request setup already paid at tentative delivery.
    pub confirm_fixed: Duration,
    /// Fixed cost of dispatching a speculative certification at tentative
    /// delivery (pipelined commit path): unmarshal the payload and fan the
    /// probes out to the shard servers. Cheaper than `certify_fixed`
    /// because the speculative pass runs outside the certifier's serial
    /// section — no total-order bookkeeping, no history mutation.
    pub speculate_fixed: Duration,
    /// Latency of the verdict exchange for *read-only* cross-span
    /// validations under partial replication: a read-only transaction is
    /// never broadcast, so its cross-span check cannot ride the wire-vote
    /// machinery and instead waits out one modelled LAN round trip (probe
    /// out, verdicts back). Update transactions pay real wire-vote latency
    /// instead ([`dbsm_gcs::Gcs::cast_vote`]); span-local reads pay
    /// nothing.
    pub vote_rtt: Duration,
    /// Snapshot size per warehouse for rejoin state transfer: a restarted
    /// site receives this many bytes per warehouse it replicates (every
    /// warehouse under full replication, only its spans' warehouses under
    /// partial placement).
    pub snapshot_bytes_per_warehouse: u64,
    /// Delta-log bytes per committed entry between the rejoiner's pre-crash
    /// commit point and the transfer cut (marshalled write-set plus framing).
    pub delta_bytes_per_entry: u64,
    /// Effective state-transfer bandwidth in bytes per second — the donor
    /// streams the snapshot and delta log alongside regular traffic, so this
    /// sits below raw link speed.
    pub transfer_bytes_per_sec: f64,
}

impl Default for CertCostModel {
    fn default() -> Self {
        CertCostModel {
            marshal_fixed: Duration::from_micros(15),
            marshal_per_byte_ns: 2.0,
            certify_fixed: Duration::from_micros(20),
            per_comparison_ns: 60.0,
            per_probe_ns: 90.0,
            merge_ns: 25.0,
            confirm_fixed: Duration::from_micros(2),
            speculate_fixed: Duration::from_micros(10),
            vote_rtt: Duration::from_micros(120),
            snapshot_bytes_per_warehouse: 2 << 20,
            delta_bytes_per_entry: 768,
            transfer_bytes_per_sec: 12.5e6,
        }
    }
}

impl CertCostModel {
    /// Cost of marshalling `bytes`.
    pub fn marshal(&self, bytes: usize) -> Duration {
        self.marshal_fixed + Duration::from_nanos((self.marshal_per_byte_ns * bytes as f64) as u64)
    }

    /// Wall-clock time to stream `bytes` of rejoin state transfer at the
    /// configured bandwidth.
    pub fn transfer_delay(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.transfer_bytes_per_sec)
    }

    /// The data-dependent part of one certification that performed `work`:
    /// the merge comparisons and index probes it actually executed —
    /// critical-path probes plus the per-shard merge term when the work was
    /// sharded (`shards_touched > 0`), total probes otherwise. This is the
    /// *stall* a certification inflicts on whatever loop runs it inline.
    pub fn certify_data(&self, work: CertWork) -> Duration {
        let probes = if work.shards_touched > 0 { work.critical_probes } else { work.probes };
        Duration::from_nanos((self.per_comparison_ns * work.comparisons as f64) as u64)
            + Duration::from_nanos((self.per_probe_ns * probes as f64) as u64)
            + Duration::from_nanos((self.merge_ns * work.shards_touched as f64) as u64)
    }

    /// Cost of one synchronous certification that performed `work`: the
    /// fixed unmarshal/setup cost plus [`CertCostModel::certify_data`].
    pub fn certify(&self, work: CertWork) -> Duration {
        self.certify_fixed + self.certify_data(work)
    }

    /// Cost of confirming a speculation at total-order delivery: the fixed
    /// lookup plus whatever delta re-probe `work` the confirmation actually
    /// performed (zero for a speculation hit).
    pub fn confirm(&self, work: CertWork) -> Duration {
        self.confirm_fixed + self.certify_data(work)
    }

    /// Service time of `probes` index probes on one shard server — the
    /// per-server work a speculative certification enqueues.
    pub fn probe_service(&self, probes: usize) -> Duration {
        Duration::from_nanos((self.per_probe_ns * probes as f64) as u64)
    }

    /// Cost of joining `servers` per-shard verdicts into one outcome.
    pub fn merge(&self, servers: usize) -> Duration {
        Duration::from_nanos((self.merge_ns * servers as f64) as u64)
    }

    /// Total conflict-check nanoseconds a run's [`CertWorkTotals`]
    /// represent if every probe executed serially — the data-dependent work
    /// a single-threaded certifier would have to perform. The fixed
    /// per-request unmarshal cost is identical across backends and is
    /// deliberately excluded: this pair of views exists to compare backends,
    /// and a constant both sides pay would only dilute the comparison.
    ///
    /// [`CertWorkTotals`]: crate::CertWorkTotals
    pub fn total_work_ns(&self, t: &crate::CertWorkTotals) -> f64 {
        self.per_comparison_ns * t.comparisons as f64
            + self.per_probe_ns * t.probes as f64
            + self.merge_ns * t.shard_touches as f64
    }

    /// Critical-path conflict-check nanoseconds of a run's
    /// [`CertWorkTotals`]: what the certification stage actually costs when
    /// each request's shards probe in parallel — most-loaded-shard probes
    /// plus the merge term. Falls back to the serial total for unsharded
    /// runs (no fan-out recorded). Same exclusion of the fixed per-request
    /// cost as [`CertCostModel::total_work_ns`].
    ///
    /// [`CertWorkTotals`]: crate::CertWorkTotals
    pub fn critical_path_ns(&self, t: &crate::CertWorkTotals) -> f64 {
        let probes = if t.shard_touches > 0 { t.critical_probes } else { t.probes };
        self.per_comparison_ns * t.comparisons as f64
            + self.per_probe_ns * probes as f64
            + self.merge_ns * t.shard_touches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_have_paper_defaults() {
        let c = ExperimentConfig::centralized(3, 500);
        assert_eq!(c.sites, 1);
        assert_eq!(c.cpus_per_site, 3);
        assert_eq!(c.target_txns, 10_000);
        let r = ExperimentConfig::replicated(6, 2000);
        assert_eq!(r.sites, 6);
        assert_eq!(r.cpus_per_site, 1);
        assert_eq!(r.gcs_config().n_nodes, 6);
    }

    #[test]
    fn cost_model_scales() {
        let m = CertCostModel::default();
        assert!(m.marshal(1000) > m.marshal(10));
        let comparisons = |n| CertWork { comparisons: n, ..CertWork::default() };
        let probes = |n| CertWork { probes: n, ..CertWork::default() };
        assert!(m.certify(comparisons(500)) > m.certify(comparisons(0)));
        assert!(m.certify(probes(500)) > m.certify(probes(0)));
        // A handful of probes is far cheaper than a long scan: the honest
        // pricing that makes the indexed backend pay off under load.
        assert!(m.certify(probes(24)) < m.certify(comparisons(1000)));
    }

    #[test]
    fn sharded_work_is_priced_by_its_critical_path() {
        let m = CertCostModel::default();
        // 48 probes spread over 4 shards, worst shard 16: the parallel
        // certification pays for 16 probes + 4 merges, not for 48 probes.
        let sharded =
            CertWork { probes: 48, critical_probes: 16, shards_touched: 4, ..CertWork::default() };
        let serial = CertWork { probes: 48, ..CertWork::default() };
        let critical = CertWork { probes: 16, ..CertWork::default() };
        assert!(m.certify(sharded) < m.certify(serial), "parallelism must pay off");
        let merge = Duration::from_nanos((m.merge_ns * 4.0) as u64);
        assert_eq!(m.certify(sharded), m.certify(critical) + merge);
        // Perfectly serial sharded work (one shard) prices like the index.
        let one_shard =
            CertWork { probes: 16, critical_probes: 16, shards_touched: 1, ..CertWork::default() };
        let one_merge = Duration::from_nanos(m.merge_ns as u64);
        assert_eq!(m.certify(one_shard), m.certify(critical) + one_merge);
    }

    #[test]
    fn run_totals_split_serial_from_critical_path_ns() {
        use crate::CertWorkTotals;
        let m = CertCostModel::default();
        let mut t = CertWorkTotals::default();
        t.record(CertWork {
            probes: 40,
            critical_probes: 10,
            shards_touched: 4,
            ..CertWork::default()
        });
        t.record(CertWork {
            probes: 6,
            critical_probes: 3,
            shards_touched: 2,
            ..CertWork::default()
        });
        let (total, critical) = (m.total_work_ns(&t), m.critical_path_ns(&t));
        assert!(critical < total, "critical {critical} vs total {total}");
        // The difference is exactly the probes hidden by parallelism.
        let hidden = (40 + 6 - 10 - 3) as f64 * m.per_probe_ns;
        assert!((total - critical - hidden).abs() < 1e-9);
        // Unsharded totals report no split: both views agree.
        let mut flat = CertWorkTotals::default();
        flat.record(CertWork { probes: 25, ..CertWork::default() });
        flat.record(CertWork { comparisons: 400, ..CertWork::default() });
        assert_eq!(m.total_work_ns(&flat), m.critical_path_ns(&flat));
    }

    #[test]
    fn ann_policy_selector_materializes_gcs_config() {
        let c = ExperimentConfig::replicated(3, 30);
        assert_eq!(c.gcs_config().ann_policy, AnnBatchPolicy::Immediate, "paper-faithful default");
        let c = c.with_ann_policy(AnnBatchPolicy::adaptive_lan());
        assert_eq!(c.gcs_config().ann_policy, AnnBatchPolicy::adaptive_lan());
        assert_eq!(c.gcs_config().n_nodes, 3, "materialized config keeps the site count");
    }

    #[test]
    fn partition_plans_force_uniform_delivery() {
        use dbsm_sim::SimTime;
        let plan = FaultPlan::partition(
            vec![vec![0, 1], vec![2]],
            SimTime::from_secs(5),
            SimTime::from_secs(6),
        );
        let c = ExperimentConfig::replicated(3, 30);
        assert!(!c.gcs_config().uniform_delivery, "optimistic by default");
        let c = c.with_faults(plan);
        assert!(c.gcs_config().uniform_delivery, "partition plans run uniform");
        assert!(c.validate().is_ok());
        // Even an explicitly optimistic GCS config is overridden.
        let mut c = c;
        c.gcs = Some(GcsConfig::lan(3));
        assert!(c.gcs_config().uniform_delivery);
    }

    #[test]
    fn restart_plans_force_uniform_delivery() {
        use dbsm_sim::SimTime;
        let plan = FaultPlan::crash_restart(2, SimTime::from_secs(5), SimTime::from_secs(8));
        let c = ExperimentConfig::replicated(3, 30);
        assert!(!c.gcs_config().uniform_delivery, "optimistic by default");
        let c = c.with_faults(plan);
        assert!(c.gcs_config().uniform_delivery, "restart plans run uniform");
        assert!(c.validate().is_ok());
        // Even an explicitly optimistic GCS config is overridden.
        let mut c = c;
        c.gcs = Some(GcsConfig::lan(3));
        assert!(c.gcs_config().uniform_delivery);
    }

    #[test]
    fn transfer_delay_prices_bytes_at_the_configured_bandwidth() {
        let m = CertCostModel::default();
        // 12.5 MB at 12.5 MB/s = 1 s.
        assert_eq!(m.transfer_delay(12_500_000), Duration::from_secs(1));
        assert_eq!(m.transfer_delay(0), Duration::ZERO);
        // A 3-warehouse snapshot plus a 100-entry delta log.
        let bytes = 3 * m.snapshot_bytes_per_warehouse + 100 * m.delta_bytes_per_entry;
        let d = m.transfer_delay(bytes);
        assert!(d > Duration::from_millis(400) && d < Duration::from_secs(2), "{d:?}");
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        use dbsm_sim::SimTime;
        let bad = FaultPlan::partition(
            vec![vec![0, 1], vec![1, 2]],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert!(ExperimentConfig::replicated(3, 30).with_faults(bad).validate().is_err());
    }

    #[test]
    fn replication_factor_builder_materializes_a_placement() {
        let c = ExperimentConfig::replicated(6, 60).with_replication_factor(2);
        let p = c.placement.expect("partial placement set");
        assert_eq!((p.sites, p.replication_factor), (6, 2));
        assert!(!p.is_full());
        assert!(c.validate().is_ok());
        // k >= sites degenerates to the classic full-replication path.
        assert!(ExperimentConfig::replicated(6, 60).with_replication_factor(6).placement.is_none());
        assert!(ExperimentConfig::replicated(6, 60).with_replication_factor(9).placement.is_none());
    }

    #[test]
    fn validate_accepts_pipelined_partial_replication() {
        // The wire-vote machinery precomputes votes on tentative delivery,
        // so the pipelined path and partial replication now compose.
        let c = ExperimentConfig::replicated(6, 60)
            .with_replication_factor(2)
            .with_commit_path(CommitPath::Pipelined);
        assert!(c.validate().is_ok());
        // A full map on the pipelined path stays legal too.
        let full = ExperimentConfig::replicated(6, 60)
            .with_placement(PlacementMap::round_robin(6, 6))
            .with_commit_path(CommitPath::Pipelined);
        assert!(full.validate().is_ok());
    }

    #[test]
    fn validate_rejects_placements_stranded_by_faults() {
        use dbsm_sim::SimTime;
        // 60 clients -> 6 warehouses round-robin over 6 sites at rf=2:
        // warehouse span w lives on sites {w, w+1 mod 6}. A majority
        // partition {0,1,2,3} strands spans 4 and 5 entirely on {4,5} —
        // legal by default (the primary component re-homes them), rejected
        // only when the placement pins the strict pre-churn rule.
        let plan = FaultPlan::partition(
            vec![vec![0, 1, 2, 3], vec![4, 5]],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let relaxed = ExperimentConfig::replicated(6, 60)
            .with_replication_factor(2)
            .with_faults(plan.clone());
        assert!(relaxed.validate().is_ok(), "stranded spans re-home by default");
        let strict = ExperimentConfig::replicated(6, 60)
            .with_placement(PlacementMap::round_robin(6, 2).with_strict_coverage())
            .with_faults(plan.clone());
        let err = strict.validate().unwrap_err();
        assert!(err.to_string().contains("zero live replicas"), "{err}");
        // Crashing every site is unservable under either rule.
        let outage = (0..6).fold(FaultPlan::none(), |p, s| {
            p.with(dbsm_fault::FaultSpec::Crash { site: s, at: SimTime::from_secs(1) })
        });
        let dead =
            ExperimentConfig::replicated(6, 60).with_replication_factor(2).with_faults(outage);
        let err = dead.validate().unwrap_err();
        assert!(err.to_string().contains("zero live replicas"), "{err}");
        // Full replication shrugs off the stranding partition.
        assert!(ExperimentConfig::replicated(6, 60).with_faults(plan).validate().is_ok());
        // And a mismatched map is caught before the fault cross-check.
        let c = ExperimentConfig::replicated(6, 60).with_placement(PlacementMap::round_robin(3, 2));
        assert!(matches!(
            c.validate(),
            Err(ConfigError::Placement(PlacementError::MismatchedSites { .. }))
        ));
    }

    #[test]
    fn pipelined_commit_path_enables_tentative_delivery() {
        let c = ExperimentConfig::replicated(3, 30);
        assert_eq!(c.commit_path, CommitPath::Synchronous, "seed behaviour is synchronous");
        assert!(!c.gcs_config().tentative_delivery);
        let c = c.with_commit_path(CommitPath::Pipelined);
        assert!(c.gcs_config().tentative_delivery, "pipelined runs need tentative upcalls");
        // Even an explicitly configured GCS gets the flag.
        let mut c = c;
        c.gcs = Some(GcsConfig::lan(3));
        assert!(c.gcs_config().tentative_delivery);
        assert_eq!(CommitPath::Synchronous.name(), "sync");
        assert_eq!(CommitPath::Pipelined.name(), "pipelined");
    }

    #[test]
    fn confirm_prices_only_the_delta_window() {
        let m = CertCostModel::default();
        // A speculation hit confirms for the fixed lookup alone.
        assert_eq!(m.confirm(CertWork::default()), m.confirm_fixed);
        assert!(m.confirm(CertWork::default()) < m.certify(CertWork::default()));
        // A revalidation pays the fixed lookup plus its delta probes, and
        // the data-dependent part is identical to the synchronous price.
        let delta = CertWork { probes: 7, ..CertWork::default() };
        assert_eq!(m.confirm(delta), m.confirm_fixed + m.certify_data(delta));
        assert_eq!(m.certify(delta), m.certify_fixed + m.certify_data(delta));
        // Per-server service and merge compose the same probe pricing.
        assert_eq!(m.probe_service(7), m.certify_data(delta));
        assert_eq!(m.merge(4), Duration::from_nanos(100));
        // The pipelined fixed costs must undercut the synchronous dispatch,
        // or overlapping buys nothing: speculate skips the serial section,
        // confirm skips the already-paid unmarshal.
        assert!(m.speculate_fixed + m.confirm_fixed < m.certify_fixed);
    }

    #[test]
    fn backend_selector_defaults_to_indexed() {
        // Flipped from Linear in the sharding PR, after re-validating the
        // deterministic smoke test and paper-scale ablations under the
        // index. The paper-faithful scan stays selectable.
        let c = ExperimentConfig::centralized(1, 10);
        assert_eq!(c.cert_backend, CertBackendKind::Indexed);
        let c = c.with_cert_backend(CertBackendKind::Linear);
        assert_eq!(c.cert_backend, CertBackendKind::Linear);
        let c = c.with_cert_backend(CertBackendKind::Sharded { shards: 8 });
        assert_eq!(c.cert_backend, CertBackendKind::Sharded { shards: 8 });
    }
}

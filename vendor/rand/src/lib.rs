//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset it uses: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits,
//! [`rngs::SmallRng`] (xoshiro256++, seeded via SplitMix64 like upstream's
//! `seed_from_u64`), uniform [`Rng::gen_range`] over half-open and inclusive
//! integer/float ranges, and [`Rng::gen_bool`]. Generators are fully
//! deterministic for a given seed, which the simulation's reproducibility
//! tests rely on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (SplitMix64 expansion, matching
    /// upstream's default `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sampling on a `u64` span (`span == 0` means
/// the full 2^64 range).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Lemire's rejection method: accept only the low-product zone that makes
    // every output value equally likely.
    let threshold = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, span);
        if lo >= threshold {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

macro_rules! impl_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(bounded_u64(rng, span) as $ty)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let v = self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5i64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn inclusive_full_width_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..=u64::MAX);
            let _ = rng.gen_range(0u8..=255);
        }
    }
}

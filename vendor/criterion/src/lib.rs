//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset it uses: [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of upstream's
//! statistical analysis it runs a fixed warm-up followed by timed samples and
//! reports mean / min / max per benchmark — enough to compare hot paths
//! between commits while staying dependency-free.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is amortized; accepted for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-runs for every routine invocation.
    PerIteration,
}

/// Per-benchmark measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    target_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            target_time: Duration::from_millis(800),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
    filter: Option<String>,
}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Reads the benchmark name filter from the command line, like upstream:
    /// `cargo bench -- <substring>` runs only matching benchmarks. The
    /// harness flags cargo passes (`--bench`, the target name) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            filter: self.filter.clone(),
            _parent: self,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        if self.matches(&name) {
            run_one(&name, self.settings, f);
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// A named group of benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    filter: Option<String>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.target_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.filter.as_deref().is_none_or(|fl| full.contains(fl)) {
            run_one(&full, self.settings, f);
        }
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, mut f: F) {
    // Warm-up: run the routine until the warm-up budget elapses, measuring
    // nothing. Also seeds the per-sample iteration count estimate.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(50);
    while warm_start.elapsed() < settings.warm_up {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed / b.iters as u32;
        }
    }
    let target_sample = settings.target_time.div_f64(settings.sample_size as f64);
    // The iteration cap keeps the first sample of a state-growing benchmark
    // bounded even when the warm-up estimate is far too optimistic; 2^14
    // iterations still times nanosecond-scale routines to well under 1%.
    let iters_for = |per_iter: Duration| {
        (target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 14) as u64
    };

    // The iteration count is re-estimated after every sample: benchmarks
    // whose state grows as they run (larger histories, longer queues) get
    // slower per iteration, and a stale estimate would overshoot the time
    // budget by orders of magnitude. A hard wall-clock cap bounds even
    // super-linear growth.
    let mut samples = Vec::with_capacity(settings.sample_size);
    let measure_start = Instant::now();
    let hard_cap = settings.target_time * 3;
    for _ in 0..settings.sample_size {
        b.iters = iters_for(per_iter);
        b.elapsed = Duration::ZERO;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        per_iter = b.elapsed / b.iters as u32;
        if measure_start.elapsed() > hard_cap {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_time(samples[0]),
        fmt_time(mean),
        fmt_time(*samples.last().expect("non-empty")),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark group function, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.measurement_time(Duration::from_millis(20));
        let mut ran = false;
        g.bench_function("iter", |b| {
            ran = true;
            b.iter(|| black_box(3u64).wrapping_mul(7))
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran);
    }
}

//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: [`Bytes`] (cheaply cloneable,
//! sliceable, shared byte buffer), [`BytesMut`] (growable builder), and the
//! [`Buf`]/[`BufMut`] cursor traits with little-endian accessors. Semantics
//! match the real crate for this subset: `Buf::get_*` consume from the front
//! of the buffer (so `len()` afterwards reports the remaining bytes) and
//! panic when the buffer is too short, exactly like upstream.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Clones and [`Bytes::slice`] share the same backing allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Creates a `Bytes` from a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copies `data` into a fresh `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable, unique byte buffer used to build a [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { data: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

/// Read cursor over a byte buffer; `get_*` accessors consume from the front.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes from the front.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst`, consuming them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to the end of a growable buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_slice(&[val]);
        }
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.data.resize(self.data.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_bytes(0xAB, 3);
        let mut r = b.freeze();
        assert_eq!(r.len(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.len(), 3, "len() reports remaining after get_*");
        assert_eq!(&r[..], &[0xAB, 0xAB, 0xAB]);
    }

    #[test]
    fn slices_share_and_compose() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(1..5);
        assert_eq!(&s[..], &[1, 2, 3, 4]);
        let s2 = s.slice(1..3);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.len(), 6, "parent unaffected");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn get_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u16_le();
    }
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and [`any`] strategies, tuple composition,
//! `prop::collection::{vec, btree_set}`, `prop_oneof!`, and the [`proptest!`]
//! test macro with optional `#![proptest_config(..)]`.
//!
//! Differences from upstream, deliberate for an offline testbed:
//!
//! * **No shrinking.** A failing case panics with the standard assertion
//!   message; the RNG seed for every case is derived deterministically from
//!   the test name and case index, so failures reproduce exactly on re-run.
//! * `prop_assert!`/`prop_assert_eq!` panic instead of returning
//!   `TestCaseError` (observable behavior under `cargo test` is identical).

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, flat_map: f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    flat_map: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat_map)(self.source.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally weighted alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                use rand::RngCore;
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.gen_range(-1e9..1e9)
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespace mirror of upstream's `proptest::prop` re-exports.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::*;
    }
    /// Option strategies.
    pub mod option {
        pub use crate::option::*;
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: `None` roughly one time in four, as a
    /// cheap stand-in for upstream's weighted default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::RngCore;
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with target size drawn from `size`.
    ///
    /// Like upstream, the result may be smaller than the target when the
    /// element domain is too narrow; a bounded number of extra draws is used
    /// to approach the target.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target.saturating_mul(10) + 16 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Derives the deterministic base seed for one named test.
#[doc(hidden)]
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[doc(hidden)]
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name, case))
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ..) { body }` becomes a `#[test]` that runs
/// the body for `cases` generated inputs (default 256, override with
/// `#![proptest_config(ProptestConfig { cases: N, .. })]` as the first item).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::rng_for(stringify!($name), case);
                $(let $arg = $crate::Strategy::new_value(&$strategy, &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_per_test_name_and_case() {
        let s = prop::collection::vec(0u32..100, 1..10);
        let mut r1 = crate::rng_for("x", 3);
        let mut r2 = crate::rng_for("x", 3);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(v in (0u16..8, 1u64..100).prop_map(|(a, b)| u64::from(a) * b),
                                   n in 0usize..32) {
            prop_assert!(v < 800);
            prop_assert!(n < 32);
        }

        #[test]
        fn collections_respect_sizes(xs in prop::collection::vec(any::<u8>(), 2..10),
                                     set in prop::collection::btree_set(0u16..1000, 0..20)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 10);
            prop_assert!(set.len() < 20);
        }

        #[test]
        fn oneof_and_flat_map(v in prop_oneof![
            (1u16..5).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i))),
            Just((0u16, 0u16)),
        ]) {
            prop_assert!(v.1 <= v.0);
        }
    }
}

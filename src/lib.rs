//! # dbsm-testbed
//!
//! A Rust reproduction of *"Testing the Dependability and Performance of
//! Group Communication Based Database Replication Protocols"* (Sousa,
//! Pereira, Soares, Correia Jr., Rocha, Oliveira, Moura — DSN 2005): a
//! testing tool that runs **real implementations** of the Database State
//! Machine's certification and group-communication protocols inside a
//! **simulated environment** — network, database engine and TPC-C traffic —
//! under a centralized simulation runtime with global observation and fault
//! injection.
//!
//! This umbrella crate re-exports the workspace so examples and downstream
//! users need a single dependency:
//!
//! * [`sim`] — discrete-event kernel, simulated CPUs, the CSRT (§2)
//! * [`net`] — the SSFNet-role network model (§2.1)
//! * [`cert`] — the certification prototype, real code (§3.3)
//! * [`gcs`] — the group-communication prototype, real code (§3.4)
//! * [`db`] — the database server model (§3.1)
//! * [`tpcc`] — the TPC-C traffic generator (§3.2)
//! * [`fault`] — fault plans and the off-line safety checker (§5.3)
//! * [`core`] — the assembled replicated-database model and experiment
//!   runner (§3–§5)
//!
//! # Examples
//!
//! ```
//! use dbsm_testbed::core::{run_experiment, ExperimentConfig};
//!
//! // Three replicas, thirty clients, a short measured run.
//! let metrics = run_experiment(ExperimentConfig::replicated(3, 30).with_target(40));
//! assert!(metrics.committed() > 0);
//! ```

#![warn(missing_docs)]

pub use dbsm_cert as cert;
pub use dbsm_core as core;
pub use dbsm_db as db;
pub use dbsm_fault as fault;
pub use dbsm_gcs as gcs;
pub use dbsm_net as net;
pub use dbsm_sim as sim;
pub use dbsm_tpcc as tpcc;
